#include "src/backends/backend.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/backends/codegen.h"
#include "src/opt/idiom.h"

namespace musketeer {

bool Backend::CanMerge(const Dag& dag, int a, int b) const {
  return CanRunAsSingleJob(dag, {a, b});
}

StatusOr<JobExtraction> ExtractJobDag(const Dag& dag, const std::vector<int>& ops) {
  std::vector<int> sorted = ops;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_set<int> opset(sorted.begin(), sorted.end());

  auto plan = std::make_shared<Dag>();
  std::unordered_map<int, int> outer_to_plan;
  std::unordered_map<std::string, int> input_nodes;

  for (int id : sorted) {
    const OperatorNode& n = dag.node(id);
    if (n.kind == OpKind::kInput) {
      return InvalidArgumentError("job operator sets must not contain INPUT nodes");
    }
    std::vector<int> plan_inputs;
    for (int p : n.inputs) {
      if (opset.count(p) > 0) {
        plan_inputs.push_back(outer_to_plan.at(p));
        continue;
      }
      const std::string& rel = dag.node(p).output;
      auto it = input_nodes.find(rel);
      if (it == input_nodes.end()) {
        int in_id = plan->AddInput(rel);
        it = input_nodes.emplace(rel, in_id).first;
      }
      plan_inputs.push_back(it->second);
    }
    OpParams params = n.params;
    if (n.kind == OpKind::kWhile) {
      // Share the (immutable) body.
      params = std::get<WhileParams>(n.params);
    }
    int plan_id = plan->AddNode(n.kind, n.output, std::move(plan_inputs),
                                std::move(params));
    outer_to_plan[id] = plan_id;
  }

  JobExtraction out;
  for (const auto& [rel, id] : input_nodes) {
    out.inputs.push_back(rel);
  }
  std::sort(out.inputs.begin(), out.inputs.end());

  // Outputs: operators consumed outside the set, or workflow sinks.
  for (int id : sorted) {
    std::vector<int> consumers = dag.ConsumersOf(id);
    bool external = consumers.empty();
    for (int c : consumers) {
      external = external || opset.count(c) == 0;
    }
    if (external) {
      out.outputs.push_back(dag.node(id).output);
    }
  }
  MUSKETEER_RETURN_IF_ERROR(plan->Validate());
  out.dag = std::move(plan);
  return out;
}

namespace {

struct BackendTraits {
  EngineKind kind;
  // Max key-repartitioning operators per job; -1 = unlimited. MapReduce-
  // family engines support exactly one group-by-key per job (§4.3.2).
  int max_shuffles = -1;
  bool graph_only = false;
  // PROCESS efficiency of Musketeer-generated code relative to the
  // hand-tuned baseline (Figs. 10/11 measure 5-30% overhead).
  double generated_efficiency = 0.9;
};

class EngineBackend : public Backend {
 public:
  explicit EngineBackend(BackendTraits traits) : traits_(traits) {}

  EngineKind kind() const override { return traits_.kind; }

  double generated_process_efficiency() const override {
    return traits_.generated_efficiency;
  }

  bool SupportsOperator(const Dag& dag, int node_id) const override {
    const OperatorNode& n = dag.node(node_id);
    if (n.kind == OpKind::kInput) {
      return false;
    }
    if (n.kind == OpKind::kBlackBox) {
      return std::get<BlackBoxParams>(n.params).backend == name();
    }
    if (traits_.graph_only) {
      if (n.kind != OpKind::kWhile) {
        return false;
      }
      for (const GraphIdiomMatch& m : DetectGraphIdioms(dag)) {
        if (m.while_node == node_id && m.vertex_centric) {
          return true;
        }
      }
      return false;
    }
    return true;
  }

  bool CanRunAsSingleJob(const Dag& dag, const std::vector<int>& ops) const override {
    if (ops.empty()) {
      return false;
    }
    int shuffles = 0;
    bool has_while = false;
    for (int id : ops) {
      if (id < 0 || id >= dag.num_nodes() || !SupportsOperator(dag, id)) {
        return false;
      }
      const OperatorNode& n = dag.node(id);
      has_while = has_while || n.kind == OpKind::kWhile;
      shuffles += IsShuffleOp(n.kind) ? 1 : 0;
    }
    // Loops always form singleton jobs: "one job" for an iterative workflow
    // means the engine runs the whole loop (§4.3.2, §6.2).
    if (has_while) {
      return ops.size() == 1;
    }
    if (traits_.max_shuffles >= 0 && shuffles > traits_.max_shuffles) {
      return false;
    }
    return true;
  }

  StatusOr<JobPlan> GeneratePlan(const Dag& dag, const std::vector<int>& ops,
                                 const SchemaMap& base,
                                 const CodeGenOptions& options) const override {
    if (!CanRunAsSingleJob(dag, ops)) {
      return FailedPreconditionError(name() +
                                     " cannot run this operator set as one job");
    }
    MUSKETEER_ASSIGN_OR_RETURN(JobExtraction extraction, ExtractJobDag(dag, ops));
    // Type-check the job against the base schemas before shipping it.
    MUSKETEER_RETURN_IF_ERROR(ValidateSchemas(*extraction.dag, dag, base));

    JobPlan plan;
    plan.engine = traits_.kind;
    plan.dag = extraction.dag;
    plan.inputs = std::move(extraction.inputs);
    plan.outputs = std::move(extraction.outputs);
    plan.name = name() + ":" + (plan.outputs.empty() ? "job" : plan.outputs[0]);

    // Loop execution mode + specialized graph path.
    bool has_while = false;
    bool idiom = false;
    for (const OperatorNode& n : plan.dag->nodes()) {
      if (n.kind == OpKind::kWhile) {
        has_while = true;
        idiom = IsGraphIdiom(*plan.dag, n.id);
      }
    }
    if (has_while) {
      // Native Lindi code does not use the vertex-optimized path (it is not
      // optimized for graph computations, §2.2 fn. 4); Musketeer's own code
      // generation picks the engine's best primitive when the idiom matched.
      bool allow_vertex_path =
          options.flavor != CodeGenOptions::Flavor::kNativeLindi;
      plan.while_mode = WhileModeFor(traits_.kind, idiom && allow_vertex_path);
      plan.graph_path = plan.while_mode == WhileExec::kVertexRuntime;
    }

    // Flavor-specific quirks.
    plan.quirks.shared_scans = options.shared_scans;
    switch (options.flavor) {
      case CodeGenOptions::Flavor::kMusketeer:
        plan.quirks.process_efficiency = traits_.generated_efficiency;
        plan.quirks.model_type_inference_miss = traits_.kind == EngineKind::kSpark;
        break;
      case CodeGenOptions::Flavor::kIdealHandTuned:
        plan.quirks.process_efficiency = 1.0;
        break;
      case CodeGenOptions::Flavor::kNativeLindi:
        if (traits_.kind != EngineKind::kNaiad) {
          return InvalidArgumentError("native Lindi code only targets Naiad");
        }
        plan.quirks.process_efficiency = 0.95;
        plan.quirks.single_threaded_io = true;
        plan.quirks.single_node_group_by = true;
        break;
      case CodeGenOptions::Flavor::kNativeHive:
        if (traits_.kind != EngineKind::kHadoop) {
          return InvalidArgumentError("native Hive plans only target Hadoop");
        }
        plan.quirks.process_efficiency = 0.85;
        break;
    }

    plan.generated_code = GenerateJobCode(plan);
    return plan;
  }

 private:
  // Checks the job dag's schemas resolve; job INPUT relations may come from
  // the base map or from other jobs (outer node outputs).
  static Status ValidateSchemas(const Dag& job, const Dag& outer,
                                const SchemaMap& base) {
    SchemaMap extended = base;
    if (!outer.nodes().empty()) {
      auto outer_schemas = outer.InferSchemas(base);
      if (outer_schemas.ok()) {
        for (const OperatorNode& n : outer.nodes()) {
          extended[n.output] = (*outer_schemas)[n.id];
        }
      }
    }
    return job.InferSchemas(extended).status();
  }

  BackendTraits traits_;
};

const EngineBackend& Instance(EngineKind kind) {
  static const EngineBackend hadoop({.kind = EngineKind::kHadoop,
                                     .max_shuffles = 1,
                                     .generated_efficiency = 0.85});
  static const EngineBackend spark({.kind = EngineKind::kSpark,
                                    .generated_efficiency = 0.88});
  static const EngineBackend naiad({.kind = EngineKind::kNaiad,
                                    .generated_efficiency = 0.98});
  static const EngineBackend powergraph({.kind = EngineKind::kPowerGraph,
                                         .graph_only = true,
                                         .generated_efficiency = 0.90});
  static const EngineBackend graphchi({.kind = EngineKind::kGraphChi,
                                       .graph_only = true,
                                       .generated_efficiency = 0.90});
  static const EngineBackend metis({.kind = EngineKind::kMetis,
                                    .max_shuffles = 1,
                                    .generated_efficiency = 0.90});
  static const EngineBackend serial({.kind = EngineKind::kSerialC,
                                     .generated_efficiency = 0.95});
  switch (kind) {
    case EngineKind::kHadoop:
      return hadoop;
    case EngineKind::kSpark:
      return spark;
    case EngineKind::kNaiad:
      return naiad;
    case EngineKind::kPowerGraph:
      return powergraph;
    case EngineKind::kGraphChi:
      return graphchi;
    case EngineKind::kMetis:
      return metis;
    case EngineKind::kSerialC:
      return serial;
  }
  return hadoop;
}

}  // namespace

const Backend& BackendFor(EngineKind kind) { return Instance(kind); }

std::vector<const Backend*> AllBackends() {
  std::vector<const Backend*> out;
  for (EngineKind kind : kAllEngines) {
    out.push_back(&BackendFor(kind));
  }
  return out;
}

}  // namespace musketeer
