// Back-end translators (§4.3): per-engine operator support, mergeability
// rules and code generation from IR sub-DAGs to executable JobPlans.

#ifndef MUSKETEER_SRC_BACKENDS_BACKEND_H_
#define MUSKETEER_SRC_BACKENDS_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/backends/job.h"

namespace musketeer {

struct CodeGenOptions {
  enum class Flavor {
    kMusketeer,       // Musketeer's generated code (default)
    kIdealHandTuned,  // hand-optimized baseline: no generated-code quirks
    kNativeLindi,     // the Lindi front-end's own Naiad code (single-threaded
                      // I/O, non-associative GROUP BY) — §2.1, §6.2
    kNativeHive,      // Hive's own Hadoop plans (rigid stages, generic code)
  };
  Flavor flavor = Flavor::kMusketeer;
  // §4.3.3 shared scans / operator fusion; disabled for the Fig. 12 ablation.
  bool shared_scans = true;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual EngineKind kind() const = 0;
  std::string name() const { return EngineKindName(kind()); }

  // True if this engine could run the operator in *some* job. Graph-only
  // engines support exactly WHILE nodes matching the vertex-centric idiom.
  virtual bool SupportsOperator(const Dag& dag, int node_id) const = 0;

  // True if the operator set can execute as a single back-end job. This is
  // the set-level form of the paper's per-back-end mergeability rules
  // (§4.3.2): MapReduce-family engines allow at most one key-repartitioning
  // operator per job; WHILE operators always form singleton jobs (running a
  // loop inside one engine job is exactly what "mapping the whole iterative
  // workflow to one back-end" means).
  virtual bool CanRunAsSingleJob(const Dag& dag,
                                 const std::vector<int>& ops) const = 0;

  // Pairwise mergeability (the paper's bidirectional-merge relation),
  // derived from the set-level rule for adjacent operators.
  bool CanMerge(const Dag& dag, int a, int b) const;

  // Generates the executable plan (and human-readable code) for one job.
  virtual StatusOr<JobPlan> GeneratePlan(const Dag& dag,
                                         const std::vector<int>& ops,
                                         const SchemaMap& base,
                                         const CodeGenOptions& options) const = 0;

  // PROCESS-rate efficiency of Musketeer-generated code relative to the
  // hand-tuned ideal for this engine (used by both the cost model and the
  // simulator, so estimates and charges agree).
  virtual double generated_process_efficiency() const = 0;
};

// Singleton registry.
const Backend& BackendFor(EngineKind kind);

// All backends, in kAllEngines order.
std::vector<const Backend*> AllBackends();

// Shared helper: extracts the job sub-DAG for `ops`, adding INPUT reads for
// externally-produced relations, and computes the job's DFS inputs/outputs.
struct JobExtraction {
  std::shared_ptr<const Dag> dag;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};
StatusOr<JobExtraction> ExtractJobDag(const Dag& dag, const std::vector<int>& ops);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_BACKEND_H_
