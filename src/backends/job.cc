#include "src/backends/job.h"

namespace musketeer {

const char* WhileExecName(WhileExec mode) {
  switch (mode) {
    case WhileExec::kNone:
      return "none";
    case WhileExec::kNativeLoop:
      return "native-loop";
    case WhileExec::kPerIterationJobs:
      return "per-iteration-jobs";
    case WhileExec::kVertexRuntime:
      return "vertex-runtime";
  }
  return "unknown";
}

WhileExec WhileModeFor(EngineKind kind, bool vertex_idiom) {
  switch (kind) {
    case EngineKind::kPowerGraph:
    case EngineKind::kGraphChi:
      return WhileExec::kVertexRuntime;
    case EngineKind::kNaiad:
      return vertex_idiom ? WhileExec::kVertexRuntime : WhileExec::kNativeLoop;
    case EngineKind::kSpark:
    case EngineKind::kSerialC:
      return WhileExec::kNativeLoop;
    case EngineKind::kHadoop:
    case EngineKind::kMetis:
      return WhileExec::kPerIterationJobs;
  }
  return WhileExec::kNativeLoop;
}

bool IsShuffleOp(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
    case OpKind::kCrossJoin:
    case OpKind::kGroupBy:
    case OpKind::kAgg:
    case OpKind::kIntersect:
    case OpKind::kDifference:
    case OpKind::kDistinct:
    case OpKind::kMax:
    case OpKind::kMin:
    case OpKind::kTopN:
    case OpKind::kSort:
      return true;
    default:
      return false;
  }
}

bool IsRowwiseOp(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kMap:
      return true;
    default:
      return false;
  }
}

}  // namespace musketeer
