// Shared job-pricing formula.
//
// Both sides of Musketeer price jobs with the same formula:
//  * the cost model (§5.2) prices *predicted* data volumes when partitioning
//    the DAG and choosing engines, and
//  * the engine simulators price *observed* volumes when executing.
// Keeping one implementation guarantees the scheduler's estimates and the
// simulator's charges agree up to size-prediction error — which is precisely
// the error the paper's history mechanism (Fig. 14) exists to remove.

#ifndef MUSKETEER_SRC_BACKENDS_PRICING_H_
#define MUSKETEER_SRC_BACKENDS_PRICING_H_

#include <vector>

#include "src/backends/job.h"
#include "src/backends/perf_model.h"

namespace musketeer {

// One operator execution to be priced (already flattened over iterations).
struct PricedOp {
  Bytes in_bytes = 0;
  bool shuffle = false;         // repartitions its input over the network
  bool charge_process = true;   // starts its own pass over the data
  bool single_node = false;     // collapses to one machine (Lindi GROUP BY)
  bool graph_path = false;      // runs on the engine's vertex-centric path
};

struct JobShape {
  Bytes pull_bytes = 0;  // read from the DFS at job start
  Bytes push_bytes = 0;  // written back at job end
  Bytes load_bytes = 0;  // through the engine's LOAD phase (0 = skip)
  std::vector<PricedOp> ops;
  int job_count = 1;     // internal engine jobs (MR loops spawn many)
  int supersteps = 0;    // iterations run natively inside the engine
  double process_efficiency = 1.0;
  bool single_threaded_io = false;
};

// Fraction of the normal PROCESS cost charged for operators fused into an
// enclosing scan (they still consume CPU, just no extra pass over the data).
inline constexpr double kFusedProcessFraction = 0.10;

// Per-node input rate when an engine reads with one thread per machine.
inline constexpr double kSingleThreadedPullMbps = 15.0;

// NIC-limited rate at which a single worker collects a non-associative
// operator's entire input (native Lindi GROUP BY, §6.2).
inline constexpr double kSingleNodeCollectMbps = 120.0;

// GraphChi keeps the working set in memory when the graph is small enough,
// skipping its out-of-core shard streaming (§2.2: it is surprisingly
// competitive on the small Orkut graph).
inline constexpr Bytes kGraphChiInMemoryBytes = 8.0 * 1024 * 1024 * 1024;
inline constexpr double kGraphChiInMemoryBoost = 1.8;

// Simulated seconds to run a job of this shape on this engine and cluster.
SimSeconds PriceJob(EngineKind engine, const ClusterConfig& cluster,
                    const JobShape& shape);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_PRICING_H_
