#include "src/backends/engine_kind.h"

namespace musketeer {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHadoop:
      return "Hadoop";
    case EngineKind::kSpark:
      return "Spark";
    case EngineKind::kNaiad:
      return "Naiad";
    case EngineKind::kPowerGraph:
      return "PowerGraph";
    case EngineKind::kGraphChi:
      return "GraphChi";
    case EngineKind::kMetis:
      return "Metis";
    case EngineKind::kSerialC:
      return "SerialC";
  }
  return "Unknown";
}

bool IsDistributedEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHadoop:
    case EngineKind::kSpark:
    case EngineKind::kNaiad:
    case EngineKind::kPowerGraph:
      return true;
    case EngineKind::kGraphChi:
    case EngineKind::kMetis:
    case EngineKind::kSerialC:
      return false;
  }
  return false;
}

bool IsGraphOnlyEngine(EngineKind kind) {
  return kind == EngineKind::kPowerGraph || kind == EngineKind::kGraphChi;
}

}  // namespace musketeer
