#include "src/backends/perf_model.h"

#include <algorithm>

namespace musketeer {

namespace {

EngineRates HadoopRates() {
  EngineRates r;
  r.job_overhead_s = 25.0;  // JVM spin-up, task scheduling, job setup
  r.pull_mbps = 90.0;       // excellent parallel streaming from HDFS
  r.push_mbps = 55.0;
  r.load_mbps = 0.0;
  r.process_mbps = 60.0;
  r.shuffle_mbps = 30.0;
  r.coord_s_per_node = 0.05;
  return r;
}

EngineRates SparkRates() {
  EngineRates r;
  r.job_overhead_s = 8.0;
  r.pull_mbps = 80.0;
  r.push_mbps = 40.0;
  r.load_mbps = 80.0;  // materializes inputs into RDDs before computing
  r.process_mbps = 90.0;
  r.shuffle_mbps = 30.0;
  r.superstep_s = 2.0;  // driver round-trip + task launch per iteration
  r.coord_s_per_node = 0.05;
  return r;
}

EngineRates NaiadRates() {
  EngineRates r;
  r.job_overhead_s = 3.0;
  // With Musketeer's parallel-I/O and HDFS support patches (Table 2).
  r.pull_mbps = 90.0;
  r.push_mbps = 60.0;
  r.load_mbps = 0.0;
  r.process_mbps = 110.0;
  r.graph_process_mbps = 150.0;  // GraphLINQ-style vertex execution
  r.shuffle_mbps = 30.0;
  r.superstep_s = 0.3;
  r.coord_s_per_node = 0.01;
  return r;
}

EngineRates PowerGraphRates() {
  EngineRates r;
  r.job_overhead_s = 8.0;
  r.pull_mbps = 70.0;
  r.push_mbps = 50.0;
  r.load_mbps = 35.0;  // vertex-cut sharding of the input graph
  r.process_mbps = 150.0;
  r.graph_process_mbps = 150.0;
  r.shuffle_mbps = 50.0;
  r.shuffle_fraction = 0.12;  // sharding keeps most gather/scatter local
  r.superstep_s = 0.4;
  r.coord_s_per_node = 0.05;
  r.max_scalable_nodes = 16;  // no benefit beyond 16 nodes (§2.2, fn. 5)
  return r;
}

EngineRates GraphChiRates() {
  EngineRates r;
  r.job_overhead_s = 2.0;
  r.pull_mbps = 100.0;  // HDFS connector added by Musketeer (Table 2)
  r.push_mbps = 80.0;
  r.load_mbps = 60.0;  // builds its on-disk shards before computing
  r.process_mbps = 80.0;
  r.graph_process_mbps = 80.0;  // out-of-core streaming, one machine
  r.shuffle_mbps = 0.0;         // no network
  r.superstep_s = 0.2;
  r.max_scalable_nodes = 1;
  return r;
}

EngineRates MetisRates() {
  EngineRates r;
  r.job_overhead_s = 1.0;
  r.pull_mbps = 110.0;
  r.push_mbps = 85.0;
  r.load_mbps = 0.0;
  r.process_mbps = 80.0;    // multi-core, one machine
  r.shuffle_mbps = 400.0;   // in-memory repartition
  r.max_scalable_nodes = 1;
  return r;
}

EngineRates SerialCRates() {
  EngineRates r;
  r.job_overhead_s = 0.2;
  r.pull_mbps = 110.0;
  r.push_mbps = 85.0;
  r.load_mbps = 0.0;
  r.process_mbps = 140.0;   // tight C loop, but a single thread
  r.shuffle_mbps = 500.0;   // pointer shuffling in memory
  r.max_scalable_nodes = 1;
  return r;
}

}  // namespace

const EngineRates& RatesFor(EngineKind kind) {
  static const EngineRates hadoop = HadoopRates();
  static const EngineRates spark = SparkRates();
  static const EngineRates naiad = NaiadRates();
  static const EngineRates powergraph = PowerGraphRates();
  static const EngineRates graphchi = GraphChiRates();
  static const EngineRates metis = MetisRates();
  static const EngineRates serial = SerialCRates();
  switch (kind) {
    case EngineKind::kHadoop:
      return hadoop;
    case EngineKind::kSpark:
      return spark;
    case EngineKind::kNaiad:
      return naiad;
    case EngineKind::kPowerGraph:
      return powergraph;
    case EngineKind::kGraphChi:
      return graphchi;
    case EngineKind::kMetis:
      return metis;
    case EngineKind::kSerialC:
      return serial;
  }
  return hadoop;
}

int EffectiveNodes(EngineKind kind, const ClusterConfig& cluster) {
  if (!IsDistributedEngine(kind)) {
    return 1;
  }
  return std::min(cluster.num_nodes, RatesFor(kind).max_scalable_nodes);
}

namespace {

// Cluster hardware factor: engine rates are calibrated against a 100 MB/s
// streaming node; slower/faster disks scale proportionally.
double HardwareFactor(const ClusterConfig& cluster) {
  return cluster.node_read_mbps / 100.0;
}

}  // namespace

double PullBandwidth(EngineKind kind, const ClusterConfig& cluster) {
  return MBps(RatesFor(kind).pull_mbps) * EffectiveNodes(kind, cluster) *
         HardwareFactor(cluster);
}

double PushBandwidth(EngineKind kind, const ClusterConfig& cluster) {
  return MBps(RatesFor(kind).push_mbps) * EffectiveNodes(kind, cluster) *
         HardwareFactor(cluster);
}

double LoadBandwidth(EngineKind kind, const ClusterConfig& cluster) {
  double rate = RatesFor(kind).load_mbps;
  if (rate <= 0) {
    return 0;
  }
  return MBps(rate) * EffectiveNodes(kind, cluster) * HardwareFactor(cluster);
}

double ProcessBandwidth(EngineKind kind, const ClusterConfig& cluster,
                        bool graph_path) {
  const EngineRates& r = RatesFor(kind);
  double rate = (graph_path && r.graph_process_mbps > 0) ? r.graph_process_mbps
                                                         : r.process_mbps;
  return MBps(rate) * EffectiveNodes(kind, cluster);
}

double ShuffleBandwidth(EngineKind kind, const ClusterConfig& cluster) {
  const EngineRates& r = RatesFor(kind);
  if (r.shuffle_mbps <= 0) {
    return MBps(1000.0);  // local engine: effectively free repartitioning
  }
  int nodes = EffectiveNodes(kind, cluster);
  double net_factor =
      IsDistributedEngine(kind) ? cluster.network_mbps / 40.0 : 1.0;
  return MBps(r.shuffle_mbps) * nodes * net_factor;
}

}  // namespace musketeer
