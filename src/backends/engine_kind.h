// The seven back-end execution engines Musketeer targets (§1, Table 3).

#ifndef MUSKETEER_SRC_BACKENDS_ENGINE_KIND_H_
#define MUSKETEER_SRC_BACKENDS_ENGINE_KIND_H_

#include <array>
#include <string>

namespace musketeer {

enum class EngineKind {
  kHadoop,      // distributed MapReduce
  kSpark,       // distributed in-memory RDD transformations
  kNaiad,       // distributed timely dataflow
  kPowerGraph,  // distributed GAS vertex-centric graph engine
  kGraphChi,    // single-machine out-of-core vertex-centric engine
  kMetis,       // single-machine multi-core MapReduce
  kSerialC,     // plain single-threaded C code
};

inline constexpr std::array<EngineKind, 7> kAllEngines = {
    EngineKind::kHadoop,     EngineKind::kSpark,    EngineKind::kNaiad,
    EngineKind::kPowerGraph, EngineKind::kGraphChi, EngineKind::kMetis,
    EngineKind::kSerialC,
};

const char* EngineKindName(EngineKind kind);

// Engines that scale across cluster nodes; the rest use exactly one machine.
bool IsDistributedEngine(EngineKind kind);

// Engines restricted to the vertex-centric / GAS computation model.
bool IsGraphOnlyEngine(EngineKind kind);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_ENGINE_KIND_H_
