#include "src/backends/codegen.h"

#include <sstream>

#include "src/base/strings.h"

namespace musketeer {

namespace {

std::string ColumnsOf(const ProjectParams& p) {
  return StrJoin(p.columns, ", ");
}

std::string AggsOf(const std::vector<NamedAgg>& aggs) {
  std::string out;
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::string(AggFnName(aggs[i].fn)) + "(" + aggs[i].column + ") as " +
           aggs[i].output_name;
  }
  return out;
}

// One pseudo-statement per operator, shared across engine syntaxes.
std::string OpStatement(const OperatorNode& n, const Dag& dag,
                        const std::string& assign, const std::string& deref,
                        const std::string& terse) {
  auto in = [&](int i) { return dag.node(n.inputs[i]).output; };
  std::ostringstream os;
  os << n.output << " " << assign << " ";
  switch (n.kind) {
    case OpKind::kInput:
      os << "read(" << deref << std::get<InputParams>(n.params).relation << ")";
      break;
    case OpKind::kSelect:
      os << in(0) << ".filter(" << terse << " "
         << std::get<SelectParams>(n.params).condition->ToString() << ")";
      break;
    case OpKind::kProject:
      os << in(0) << ".map(" << terse << " (" << ColumnsOf(std::get<ProjectParams>(n.params))
         << "))";
      break;
    case OpKind::kMap: {
      os << in(0) << ".map(" << terse << " (";
      const auto& p = std::get<MapParams>(n.params);
      for (size_t i = 0; i < p.outputs.size(); ++i) {
        os << (i > 0 ? ", " : "") << p.outputs[i].expr->ToString() << " as "
           << p.outputs[i].name;
      }
      os << "))";
      break;
    }
    case OpKind::kJoin: {
      const auto& p = std::get<JoinParams>(n.params);
      os << in(0) << ".keyBy(" << p.left_key << ").join(" << in(1) << ".keyBy("
         << p.right_key << "))";
      break;
    }
    case OpKind::kCrossJoin:
      os << in(0) << ".cartesian(" << in(1) << ")";
      break;
    case OpKind::kUnion:
      os << in(0) << ".union(" << in(1) << ")";
      break;
    case OpKind::kIntersect:
      os << in(0) << ".intersection(" << in(1) << ")";
      break;
    case OpKind::kDifference:
      os << in(0) << ".subtract(" << in(1) << ")";
      break;
    case OpKind::kDistinct:
      os << in(0) << ".distinct()";
      break;
    case OpKind::kGroupBy: {
      const auto& p = std::get<GroupByParams>(n.params);
      os << in(0) << ".groupBy(" << StrJoin(p.group_columns, ", ")
         << ").aggregate(" << AggsOf(p.aggs) << ")";
      break;
    }
    case OpKind::kAgg:
      os << in(0) << ".aggregate(" << AggsOf(std::get<AggParams>(n.params).aggs)
         << ")";
      break;
    case OpKind::kMax:
      os << in(0) << ".maxBy(" << std::get<ExtremeParams>(n.params).column << ")";
      break;
    case OpKind::kMin:
      os << in(0) << ".minBy(" << std::get<ExtremeParams>(n.params).column << ")";
      break;
    case OpKind::kTopN: {
      const auto& p = std::get<TopNParams>(n.params);
      os << in(0) << ".top(" << p.column << ", " << p.n << ")";
      break;
    }
    case OpKind::kSort:
      os << in(0) << ".sortBy(" << StrJoin(std::get<SortParams>(n.params).columns, ", ")
         << ")";
      break;
    case OpKind::kWhile: {
      const auto& p = std::get<WhileParams>(n.params);
      os << "iterate(" << p.iterations << ") { /* " << p.body->num_nodes()
         << "-operator loop body */ }";
      break;
    }
    case OpKind::kUdf:
      os << "udf_" << std::get<UdfParams>(n.params).name << "(";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        os << (i > 0 ? ", " : "") << in(i);
      }
      os << ")";
      break;
    case OpKind::kBlackBox:
      os << "native_black_box(...)";
      break;
  }
  return os.str();
}

struct Style {
  const char* header;
  const char* assign;
  const char* deref;
  const char* lambda;
  const char* line_prefix;
  const char* footer;
};

Style StyleFor(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHadoop:
      return {"// Generated Hadoop MapReduce job (Java)\n"
              "public class MusketeerJob extends Configured implements Tool {",
              "=", "hdfs://", "row ->", "  ", "}\n"};
    case EngineKind::kMetis:
      return {"// Generated Metis single-machine MapReduce job (C++)\n"
              "int main(int argc, char** argv) {",
              "=", "", "[](auto& row)", "  ", "}\n"};
    case EngineKind::kSpark:
      return {"// Generated Spark job (Scala)\n"
              "object MusketeerJob {",
              "=", "hdfs://", "x =>", "  val ", "}\n"};
    case EngineKind::kNaiad:
      return {"// Generated Naiad timely dataflow job (C#)\n"
              "public static class MusketeerJob {",
              "=", "hdfs://", "x =>", "  var ", "}\n"};
    case EngineKind::kPowerGraph:
      return {"// Generated PowerGraph GAS vertex program (C++)\n"
              "struct musketeer_vertex_program : public ivertex_program<...> {",
              "=", "", "[](auto& row)", "  ", "};\n"};
    case EngineKind::kGraphChi:
      return {"// Generated GraphChi vertex program (C++)\n"
              "struct MusketeerProgram : public GraphChiProgram<VertexT, EdgeT> {",
              "=", "", "[](auto& row)", "  ", "};\n"};
    case EngineKind::kSerialC:
      return {"/* Generated serial C job */\n"
              "int main(int argc, char** argv) {",
              "=", "", "/*row*/", "  ", "}\n"};
  }
  return {"", "=", "", "", "  ", ""};
}

}  // namespace

std::string GenerateJobCode(const JobPlan& plan) {
  Style style = StyleFor(plan.engine);
  std::ostringstream os;
  os << style.header << "\n";
  os << "  // job: " << plan.name << "\n";
  os << "  // reads: " << StrJoin(plan.inputs, ", ") << "\n";
  os << "  // writes: " << StrJoin(plan.outputs, ", ") << "\n";
  if (plan.graph_path) {
    os << "  // vertex-centric execution (graph idiom detected)\n";
  }
  if (!plan.quirks.shared_scans) {
    os << "  // NOTE: shared scans disabled\n";
  }
  for (const OperatorNode& n : plan.dag->nodes()) {
    os << style.line_prefix
       << OpStatement(n, *plan.dag, style.assign, style.deref, style.lambda)
       << ";\n";
    if (plan.quirks.model_type_inference_miss && n.kind == OpKind::kJoin) {
      os << style.line_prefix << n.output << " " << style.assign << " " << n.output
         << ".map(" << style.lambda
         << " reshape_for_downstream_key(row));  // extra pass: simple type "
            "inference could not fuse\n";
    }
  }
  for (const std::string& out : plan.outputs) {
    os << "  write(" << style.deref << out << ", " << out << ");\n";
  }
  os << style.footer;
  return os.str();
}

}  // namespace musketeer
