// Code generation: renders a job's sub-DAG as source text in the style of
// the target engine's programming interface (§4.3). The engines execute the
// plan's DAG directly (the text is what Musketeer would submit and is used
// by tests to verify that merging/scan-sharing shaped the code correctly).

#ifndef MUSKETEER_SRC_BACKENDS_CODEGEN_H_
#define MUSKETEER_SRC_BACKENDS_CODEGEN_H_

#include <string>

#include "src/backends/job.h"

namespace musketeer {

// Renders source for `plan.dag` targeting `plan.engine`. The quirks influence
// the emitted code (e.g., a type-inference miss shows up as an extra .map()).
std::string GenerateJobCode(const JobPlan& plan);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BACKENDS_CODEGEN_H_
