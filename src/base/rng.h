// Deterministic pseudo-random number generation for workload synthesis.
//
// All data generators in Musketeer are seeded so experiment runs are
// reproducible bit-for-bit across machines. The generator is SplitMix64: a
// tiny, fast, well-distributed 64-bit PRNG, good enough for synthetic-data
// purposes (not for cryptography).

#ifndef MUSKETEER_SRC_BASE_RNG_H_
#define MUSKETEER_SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>

namespace musketeer {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Zipf-like skewed integer in [0, n): probability of rank r proportional to
  // 1/(r+1)^alpha. Uses inverse-CDF sampling on an approximated harmonic sum,
  // which is accurate enough for generating power-law graph degrees.
  uint64_t NextZipf(uint64_t n, double alpha) {
    // Approximate generalized harmonic number via the integral.
    double u = NextDouble();
    if (alpha == 1.0) {
      double h = std::log(static_cast<double>(n) + 1.0);
      return static_cast<uint64_t>(std::exp(u * h)) - 1;
    }
    double one_minus = 1.0 - alpha;
    double h = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0) / one_minus;
    double x = std::pow(u * h * one_minus + 1.0, 1.0 / one_minus) - 1.0;
    uint64_t r = static_cast<uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

 private:
  uint64_t state_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_RNG_H_
