// Small string utilities shared by the front-end parsers, CSV reader and the
// code generators. All helpers are allocation-conscious and locale-free.

#ifndef MUSKETEER_SRC_BASE_STRINGS_H_
#define MUSKETEER_SRC_BASE_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace musketeer {

// Splits `input` on `sep`; adjacent separators yield empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

// Splits on arbitrary whitespace runs; never yields empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view input);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// Joins `pieces` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Uppercases ASCII letters.
std::string AsciiToUpper(std::string_view input);
// Lowercases ASCII letters.
std::string AsciiToLower(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strict numeric parsing: the whole string must be consumed.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Formats a byte count as a human-readable string ("1.5 GB").
std::string HumanBytes(double bytes);

// Formats a duration in seconds as a human-readable string ("2m31s").
std::string HumanSeconds(double seconds);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_STRINGS_H_
