#include "src/base/cancel.h"

#include <utility>

namespace musketeer {
namespace {

struct InterruptState {
  CancelToken token;
  DeadlinePoint deadline;
};

InterruptState& ThreadInterrupt() {
  thread_local InterruptState state;
  return state;
}

}  // namespace

ScopedInterrupt::ScopedInterrupt(CancelToken token, DeadlinePoint deadline) {
  InterruptState& state = ThreadInterrupt();
  saved_token_ = std::move(state.token);
  saved_deadline_ = state.deadline;
  state.token = std::move(token);
  state.deadline = deadline;
}

ScopedInterrupt::~ScopedInterrupt() {
  InterruptState& state = ThreadInterrupt();
  state.token = std::move(saved_token_);
  state.deadline = saved_deadline_;
}

Status CheckInterrupt() {
  const InterruptState& state = ThreadInterrupt();
  if (state.token.cancel_requested()) {
    return CancelledError("cancellation requested");
  }
  if (state.deadline.has_value() &&
      std::chrono::steady_clock::now() >= *state.deadline) {
    return DeadlineExceededError("deadline exceeded");
  }
  return OkStatus();
}

}  // namespace musketeer
