// Lightweight error-propagation primitives used throughout Musketeer.
//
// Musketeer is built without exceptions on its hot paths; fallible operations
// return Status (or StatusOr<T> when they also produce a value). The design
// mirrors the absl::Status API surface that the rest of the codebase expects,
// without pulling in a third-party dependency.

#ifndef MUSKETEER_SRC_BASE_STATUS_H_
#define MUSKETEER_SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace musketeer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kOutOfRange,
  kResourceExhausted,  // backpressure: a bounded queue/pool is full
  kDeadlineExceeded,   // a workflow/job deadline expired before completion
  kCancelled,          // cooperative cancellation observed at a checkpoint
  kUnavailable,        // transient engine/substrate failure; safe to retry
  kAborted,            // attempt aborted mid-flight (e.g. substrate output
                       // diverged from the shared kernel); safe to retry
};

// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the success path (no
// allocation); errors carry a message describing what went wrong.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);

// Prepends "[context] " to an error's message, keeping its code. Used by the
// retry dispatcher so errors carry (workflow, job, engine, attempt)
// provenance. OK statuses pass through untouched.
Status Annotate(const Status& status, const std::string& context);

// Holds either a value of type T or an error Status. Accessing the value of
// an errored StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates an error Status from a fallible expression.
#define MUSKETEER_RETURN_IF_ERROR(expr)         \
  do {                                          \
    ::musketeer::Status _status = (expr);       \
    if (!_status.ok()) {                        \
      return _status;                           \
    }                                           \
  } while (0)

// Evaluates a StatusOr expression; on success binds the value to `lhs`,
// otherwise returns the error. Usage:
//   MUSKETEER_ASSIGN_OR_RETURN(auto table, LoadTable(path));
#define MUSKETEER_ASSIGN_OR_RETURN(lhs, expr)                   \
  MUSKETEER_ASSIGN_OR_RETURN_IMPL_(                             \
      MUSKETEER_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define MUSKETEER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  lhs = std::move(tmp).value()

#define MUSKETEER_STATUS_CONCAT_INNER_(a, b) a##b
#define MUSKETEER_STATUS_CONCAT_(a, b) MUSKETEER_STATUS_CONCAT_INNER_(a, b)

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_STATUS_H_
