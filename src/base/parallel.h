// Shared intra-query parallel execution layer (morsel-driven parallelism,
// after Leis et al., SIGMOD 2014).
//
// The core primitive is ParallelChunks: split a range of `n` items into
// fixed-size chunks ("morsels") and run one task per chunk on a shared task
// pool. The determinism contract every caller relies on:
//
//   * Chunk boundaries depend only on (n, grain) — never on the thread
//     count. Thread count decides WHO runs a chunk, not WHAT a chunk is.
//   * Each task writes only to its own chunk-indexed slot; callers merge
//     slots in chunk order (or a fixed pairwise tree) after the barrier.
//
// Together these make every parallel operator bit-identical to its
// sequential execution: the same partial results are produced and combined
// in the same order regardless of parallelism (floating-point summation
// trees included). `ScopedParallelThreads(1)` therefore degrades any
// parallel code path to plain sequential execution with identical output —
// this is how engine quirks (`single_threaded_io`, the serial-C backend)
// keep their modeled single-threaded behavior.
//
// The pool supports concurrent Run() calls (service workers each driving a
// query) and nested Run() calls (an engine runtime's per-split task invoking
// a parallel relational kernel): the caller always participates in its own
// job, so progress never depends on a pool worker being available.

#ifndef MUSKETEER_SRC_BASE_PARALLEL_H_
#define MUSKETEER_SRC_BASE_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace musketeer {

// Rows per morsel for relational kernels. Fixed (not derived from the thread
// count) so chunk boundaries — and thus merge trees — are identical at every
// parallelism level.
inline constexpr size_t kMorselRows = 8192;

// Number of chunks covering n items at the given grain.
inline size_t NumChunks(size_t n, size_t grain) {
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

// ---------------------------------------------------------------------------
// Thread-count configuration.
// ---------------------------------------------------------------------------

// The machine's hardware concurrency (at least 1).
int HardwareThreads();

// The parallelism for parallel kernels on this thread: the innermost active
// ScopedParallelThreads override if any, else the process-wide default. The
// default comes from the MUSKETEER_THREADS environment variable when set,
// otherwise HardwareThreads().
int ParallelThreads();

// Sets the process-wide default parallelism (clamped to >= 1). Thread-safe.
void SetParallelThreads(int n);

// RAII parallelism override for the current thread (and parallel work it
// spawns). Thread-local so concurrent service workers can run at different
// widths without racing on a global; pool workers inherit the width of the
// job they execute.
class ScopedParallelThreads {
 public:
  explicit ScopedParallelThreads(int n);
  ~ScopedParallelThreads();

  ScopedParallelThreads(const ScopedParallelThreads&) = delete;
  ScopedParallelThreads& operator=(const ScopedParallelThreads&) = delete;

 private:
  int saved_;
};

// ---------------------------------------------------------------------------
// Task pool.
// ---------------------------------------------------------------------------

// A shared pool of helper threads executing indexed task batches. One
// process-wide instance (Global()) backs all parallel kernels.
//
// Run(num_tasks, parallelism, task) invokes task(0..num_tasks-1), each index
// exactly once, using up to `parallelism` threads including the caller. The
// caller participates until the batch is finished, so nested and concurrent
// Run() calls cannot deadlock even with zero free pool workers. Tasks of one
// batch may run in any order and concurrently; Run returns after all of them
// completed (with a happens-before edge from every task to the return).
//
// Workers are spawned lazily up to the largest parallelism ever requested
// (capped at kMaxPoolThreads) — deliberately not capped at hardware
// concurrency, so explicit thread counts (benches, TSan interleaving tests)
// exercise real multithreading even on small machines.
class TaskPool {
 public:
  static TaskPool& Global();

  TaskPool();
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  static constexpr int kMaxPoolThreads = 64;

  // Runs task(i) for i in [0, num_tasks) on up to `parallelism` threads
  // (caller included). Blocks until every task finished. `task` may itself
  // call Run (nested parallelism).
  void Run(size_t num_tasks, int parallelism,
           const std::function<void(size_t)>& task);

  // Threads spawned so far (observability, tests).
  int num_workers() const;

 private:
  struct Job {
    const std::function<void(size_t)>* task = nullptr;
    size_t num_tasks = 0;
    int max_helpers = 0;         // guarded by pool mu_
    int helpers = 0;             // guarded by pool mu_
    int inherited_width = 1;     // ParallelThreads() of the submitter
    std::atomic<size_t> next{0};

    // Lock-free completion count on the hot path: each task does one
    // release-fetch_add; only the LAST task of the batch takes `mu` to
    // signal `done` (and the waiter re-checks under the same lock), so
    // morsel-sized tasks never serialize on the mutex.
    std::atomic<size_t> completed{0};
    std::mutex mu;
    std::condition_variable done;
  };

  void WorkerLoop();
  // Executes tasks of `job` until none remain, then returns.
  static void WorkOn(Job* job);
  // Grows the worker set towards `target` threads. Requires mu_.
  void EnsureWorkersLocked(int target);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;  // guarded by mu_
  std::vector<std::thread> workers_;       // guarded by mu_
  bool stop_ = false;                      // guarded by mu_
};

// ---------------------------------------------------------------------------
// Chunked parallel-for.
// ---------------------------------------------------------------------------

// Runs fn(chunk_index, begin, end) over [0, n) split into `grain`-sized
// chunks, using ParallelThreads() threads. Chunk boundaries depend only on
// (n, grain). fn must confine writes to chunk-private state (e.g. slot
// [chunk_index] of a presized vector).
void ParallelChunks(size_t n, size_t grain,
                    const std::function<void(size_t, size_t, size_t)>& fn);

// As ParallelChunks, but collects one R per chunk, in chunk order. R must be
// default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> ParallelMapChunks(size_t n, size_t grain, const Fn& fn) {
  std::vector<R> out(NumChunks(n, grain));
  ParallelChunks(n, grain, [&](size_t chunk, size_t begin, size_t end) {
    out[chunk] = fn(chunk, begin, end);
  });
  return out;
}

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_PARALLEL_H_
