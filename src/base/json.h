// Minimal JSON parse/serialize support.
//
// Just enough JSON for the repo's own file formats — HistoryStore
// persistence (--history-file), Chrome trace validation in tests, and bench
// output — without a third-party dependency. Objects preserve insertion
// order (a vector of pairs, not a map) so serialization round-trips byte
// order and diffs stay readable.

#ifndef MUSKETEER_SRC_BASE_JSON_H_
#define MUSKETEER_SRC_BASE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"

namespace musketeer {

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

// `s` escaped and wrapped in double quotes.
std::string JsonQuote(std::string_view s);

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with the given key, or nullptr. Object lookups only.
  const JsonValue* Find(std::string_view key) const;

  // Serializes this value as compact JSON.
  std::string Dump() const;
};

// Parses a complete JSON document (trailing non-whitespace is an error).
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_JSON_H_
