// Minimal leveled logging for Musketeer. Logging is off by default so tests
// and benchmarks stay quiet; set MUSKETEER_LOG=info (or debug) in the
// environment, or call SetLogLevel(), to see workflow-manager decisions.

#ifndef MUSKETEER_SRC_BASE_LOGGING_H_
#define MUSKETEER_SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace musketeer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Internal: emits one formatted line to stderr.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() {
    if (level_ >= GetLogLevel()) {
      LogMessage(level_, file_, line_, stream_.str());
    }
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace musketeer

#define MLOG_DEBUG ::musketeer::LogStream(::musketeer::LogLevel::kDebug, __FILE__, __LINE__)
#define MLOG_INFO ::musketeer::LogStream(::musketeer::LogLevel::kInfo, __FILE__, __LINE__)
#define MLOG_WARN ::musketeer::LogStream(::musketeer::LogLevel::kWarning, __FILE__, __LINE__)
#define MLOG_ERROR ::musketeer::LogStream(::musketeer::LogLevel::kError, __FILE__, __LINE__)

#endif  // MUSKETEER_SRC_BASE_LOGGING_H_
