#include "src/base/parallel.h"

#include <cstdlib>
#include <string>

namespace musketeer {
namespace {

int ClampThreads(int n) {
  if (n < 1) return 1;
  if (n > TaskPool::kMaxPoolThreads) return TaskPool::kMaxPoolThreads;
  return n;
}

int DefaultThreadsFromEnv() {
  if (const char* env = std::getenv("MUSKETEER_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return ClampThreads(static_cast<int>(v));
  }
  return HardwareThreads();
}

std::atomic<int>& GlobalThreads() {
  static std::atomic<int> threads{DefaultThreadsFromEnv()};
  return threads;
}

// 0 = no override; pool workers and ScopedParallelThreads set this.
thread_local int tls_thread_override = 0;

}  // namespace

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ParallelThreads() {
  if (tls_thread_override > 0) return tls_thread_override;
  return GlobalThreads().load(std::memory_order_relaxed);
}

void SetParallelThreads(int n) {
  GlobalThreads().store(ClampThreads(n), std::memory_order_relaxed);
}

ScopedParallelThreads::ScopedParallelThreads(int n)
    : saved_(tls_thread_override) {
  tls_thread_override = ClampThreads(n);
}

ScopedParallelThreads::~ScopedParallelThreads() {
  tls_thread_override = saved_;
}

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TaskPool& TaskPool::Global() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool() = default;

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int TaskPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void TaskPool::EnsureWorkersLocked(int target) {
  if (target > kMaxPoolThreads) target = kMaxPoolThreads;
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void TaskPool::WorkOn(Job* job) {
  for (;;) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->num_tasks) return;
    (*job->task)(i);
    // Release order publishes the task's writes to whoever observes the
    // final count (the waiter's acquire load / mutex acquisition).
    size_t done_now =
        job->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done_now == job->num_tasks) {
      // Only the last task pays for the lock + notify.
      std::lock_guard<std::mutex> lock(job->mu);
      job->done.notify_all();
    }
  }
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        if (stop_) return true;
        for (auto it = jobs_.begin(); it != jobs_.end();) {
          if ((*it)->next.load(std::memory_order_relaxed) >=
              (*it)->num_tasks) {
            it = jobs_.erase(it);  // exhausted; helpers finish on their own
          } else if ((*it)->helpers < (*it)->max_helpers) {
            return true;
          } else {
            ++it;
          }
        }
        return false;
      });
      if (stop_) return;
      for (const auto& j : jobs_) {
        if (j->next.load(std::memory_order_relaxed) < j->num_tasks &&
            j->helpers < j->max_helpers) {
          job = j;
          ++j->helpers;
          break;
        }
      }
    }
    if (job != nullptr) {
      // Nested kernels inside a task run at the submitter's width.
      ScopedParallelThreads width(job->inherited_width);
      WorkOn(job.get());
    }
  }
}

void TaskPool::Run(size_t num_tasks, int parallelism,
                   const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  int helpers = static_cast<int>(
      std::min<size_t>(num_tasks - 1,
                       static_cast<size_t>(ClampThreads(parallelism) - 1)));
  if (helpers <= 0) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->task = &task;
  job->num_tasks = num_tasks;
  job->max_helpers = helpers;
  job->inherited_width = ParallelThreads();
  {
    std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkersLocked(helpers);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  WorkOn(job.get());  // the caller is always one of the job's threads

  {
    // Wait for helpers still finishing their last task; the acquire load
    // (paired with the workers' release fetch_add) publishes their writes.
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == job->num_tasks;
    });
  }
  {
    // Drop the queue's reference promptly (workers also prune lazily).
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ParallelChunks
// ---------------------------------------------------------------------------

void ParallelChunks(size_t n, size_t grain,
                    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  int threads = ParallelThreads();
  if (chunks == 1 || threads <= 1) {
    for (size_t c = 0; c < chunks; ++c) {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }
  TaskPool::Global().Run(chunks, threads, [&](size_t c) {
    fn(c, c * grain, std::min(n, (c + 1) * grain));
  });
}

}  // namespace musketeer
