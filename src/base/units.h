// Byte-size and simulated-time conventions used across the cost model and
// the engine simulators.
//
// Simulated time is a plain double of seconds (SimSeconds). Data volumes are
// doubles of bytes (Bytes) because nominal sizes routinely exceed what the
// executed sample materializes, and fractional bytes are fine for modeling.

#ifndef MUSKETEER_SRC_BASE_UNITS_H_
#define MUSKETEER_SRC_BASE_UNITS_H_

#include <cstdint>

namespace musketeer {

using SimSeconds = double;
using Bytes = double;

constexpr Bytes kKB = 1024.0;
constexpr Bytes kMB = 1024.0 * 1024.0;
constexpr Bytes kGB = 1024.0 * 1024.0 * 1024.0;
constexpr Bytes kTB = 1024.0 * kGB;

// Converts a MB/s rate into bytes/second.
constexpr double MBps(double mb_per_s) { return mb_per_s * kMB; }

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_UNITS_H_
