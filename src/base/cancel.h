// Cooperative cancellation and deadline primitives.
//
// A CancelToken is a shared flag: the submitter keeps one handle and fires it
// with RequestCancel(); execution code polls it at well-defined checkpoints
// (between pipeline stages, between jobs, between operator batches and loop
// iterations) and unwinds with StatusCode::kCancelled. Cancellation is
// cooperative — work already inside a kernel finishes its current batch
// before the next checkpoint observes the flag.
//
// Deep code (the IR interpreters, the engine substrates' stage loops) cannot
// take a context parameter without threading it through every signature, so
// the executing thread registers its token and deadline in a thread-local
// ScopedInterrupt; CheckInterrupt() reads that registration. With no scope
// installed CheckInterrupt() is a single thread-local load returning OK, so
// reference runs and tests that never install a scope pay nothing.

#ifndef MUSKETEER_SRC_BASE_CANCEL_H_
#define MUSKETEER_SRC_BASE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "src/base/status.h"

namespace musketeer {

// Shared cancellation flag. Copies observe the same flag; a default-
// constructed token is null (never cancelled, RequestCancel is a no-op).
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool valid() const { return flag_ != nullptr; }

  void RequestCancel() const {
    if (flag_ != nullptr) {
      flag_->store(true, std::memory_order_release);
    }
  }

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Absolute wall-clock deadline; nullopt = none.
using DeadlinePoint = std::optional<std::chrono::steady_clock::time_point>;

// RAII registration of (token, deadline) as the calling thread's interrupt
// state. Nested scopes shadow the outer one and restore it on destruction
// (ExecuteJob re-installs the same context Execute() installed, which is
// fine). The registration is thread-local: parallel-pool workers executing
// morsels do not see it, which is intended — cancellation resolution is one
// operator batch, not one morsel.
class ScopedInterrupt {
 public:
  ScopedInterrupt(CancelToken token, DeadlinePoint deadline);
  ~ScopedInterrupt();

  ScopedInterrupt(const ScopedInterrupt&) = delete;
  ScopedInterrupt& operator=(const ScopedInterrupt&) = delete;

 private:
  CancelToken saved_token_;
  DeadlinePoint saved_deadline_;
};

// Checkpoint: CancelledError if the current scope's token fired,
// DeadlineExceededError if its deadline passed, OK otherwise (always OK when
// no scope is installed).
Status CheckInterrupt();

}  // namespace musketeer

#endif  // MUSKETEER_SRC_BASE_CANCEL_H_
