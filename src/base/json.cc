#include "src/base/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace musketeer {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_value ? "true" : "false";
    case Kind::kNumber: {
      if (std::isfinite(number_value)) {
        char buf[32];
        // %.17g round-trips any double; trim to %g when exact.
        std::snprintf(buf, sizeof(buf), "%.17g", number_value);
        double reparsed = std::strtod(buf, nullptr);
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%g", number_value);
        if (std::strtod(shorter, nullptr) == reparsed) {
          return shorter;
        }
        return buf;
      }
      return "null";  // JSON has no NaN/Inf
    }
    case Kind::kString:
      return JsonQuote(string_value);
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ",";
        out += array[i].Dump();
      }
      out += "]";
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < object.size(); ++i) {
        if (i > 0) out += ",";
        out += JsonQuote(object[i].first);
        out += ":";
        out += object[i].second.Dump();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    MUSKETEER_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    JsonValue v;
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MUSKETEER_ASSIGN_OR_RETURN(v.string_value, ParseString());
        v.kind = JsonValue::Kind::kString;
        return v;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = true;
        return v;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.bool_value = false;
        return v;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return v;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      MUSKETEER_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      MUSKETEER_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      v.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) {
        return v;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return v;
    }
    while (true) {
      MUSKETEER_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      v.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) {
        return v;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          MUSKETEER_ASSIGN_OR_RETURN(unsigned cp, ParseHex4());
          // Surrogate pair -> code point.
          if (cp >= 0xD800 && cp <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            MUSKETEER_ASSIGN_OR_RETURN(unsigned lo, ParseHex4());
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Error("invalid low surrogate");
            }
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  StatusOr<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number_value = value;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace musketeer
