#include "src/base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace musketeer {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("MUSKETEER_LOG");
  if (env == nullptr) {
    return LogLevel::kOff;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warning") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kOff;
}

LogLevel g_level = InitialLevel();

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, msg.c_str());
}

}  // namespace musketeer
