#include "src/base/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace musketeer {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(input.substr(start, i - start));
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string AsciiToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return std::nullopt;
  }
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) {
    return std::nullopt;
  }
  // std::from_chars for double is available in libstdc++ 11+; use it directly.
  double value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[48];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    int mins = static_cast<int>(seconds) / 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", mins,
                  static_cast<int>(seconds) - mins * 60);
  } else {
    int hours = static_cast<int>(seconds) / 3600;
    int mins = (static_cast<int>(seconds) - hours * 3600) / 60;
    std::snprintf(buf, sizeof(buf), "%dh%02dm", hours, mins);
  }
  return buf;
}

}  // namespace musketeer
