#include "src/workloads/datasets.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"

namespace musketeer {

namespace {

Schema VertexSchema() {
  return Schema({{"id", FieldType::kInt64},
                 {"vertex_value", FieldType::kDouble},
                 {"vertex_degree", FieldType::kInt64}});
}

Schema EdgeSchema(bool with_costs) {
  Schema s({{"src", FieldType::kInt64}, {"dst", FieldType::kInt64}});
  if (with_costs) {
    s.AddField({"cost", FieldType::kDouble});
  }
  return s;
}

}  // namespace

GraphDataset MakePowerLawGraph(const GraphSpec& spec) {
  Rng rng(spec.seed);
  const int n = spec.sample_vertices;
  const double avg_degree =
      spec.nominal_vertices > 0 ? spec.nominal_edges / spec.nominal_vertices : 8.0;

  // Sample edges: every vertex gets at least one out-edge; destination ids
  // are Zipf-skewed so in-degree follows a power law like real social graphs.
  std::vector<std::pair<int64_t, int64_t>> edges;
  std::vector<int64_t> out_degree(n, 0);
  for (int v = 0; v < n; ++v) {
    // Out-degree: 1 + geometric-ish around the average.
    int64_t degree = 1 + static_cast<int64_t>(rng.NextDouble() * 2.0 * avg_degree);
    degree = std::min<int64_t>(degree, n - 1);
    std::set<int64_t> dsts;
    while (static_cast<int64_t>(dsts.size()) < degree) {
      int64_t dst = static_cast<int64_t>(rng.NextZipf(n, spec.zipf_alpha));
      if (dst != v) {
        dsts.insert(dst);
      }
    }
    for (int64_t dst : dsts) {
      edges.emplace_back(v, dst);
    }
    out_degree[v] = degree;
  }

  // Build the edge columns directly (typed vectors, no variant rows).
  std::vector<Column> edge_cols;
  {
    Column src_col(FieldType::kInt64);
    Column dst_col(FieldType::kInt64);
    src_col.Reserve(edges.size());
    dst_col.Reserve(edges.size());
    Column cost_col(FieldType::kDouble);
    if (spec.with_costs) {
      cost_col.Reserve(edges.size());
    }
    for (const auto& [src, dst] : edges) {
      src_col.mutable_ints()->push_back(src);
      dst_col.mutable_ints()->push_back(dst);
      if (spec.with_costs) {
        cost_col.mutable_doubles()->push_back(1.0 + rng.NextDouble() * 9.0);
      }
    }
    edge_cols.push_back(std::move(src_col));
    edge_cols.push_back(std::move(dst_col));
    if (spec.with_costs) {
      edge_cols.push_back(std::move(cost_col));
    }
  }
  auto edge_table = std::make_shared<Table>(
      Table::FromColumns(EdgeSchema(spec.with_costs), std::move(edge_cols)));
  if (spec.nominal_edges > 0) {
    edge_table->set_scale(spec.nominal_edges /
                          static_cast<double>(edges.size()));
  }

  std::vector<Column> vertex_cols(
      {Column(FieldType::kInt64), Column(FieldType::kDouble),
       Column(FieldType::kInt64)});
  for (int v = 0; v < n; ++v) {
    // With edge costs (SSSP), vertex 0 is the source and starts at zero.
    double value = (spec.with_costs && v == 0) ? 0.0 : spec.initial_value;
    vertex_cols[0].mutable_ints()->push_back(v);
    vertex_cols[1].mutable_doubles()->push_back(value);
    vertex_cols[2].mutable_ints()->push_back(out_degree[v]);
  }
  auto vertex_table = std::make_shared<Table>(
      Table::FromColumns(VertexSchema(), std::move(vertex_cols)));
  if (spec.nominal_vertices > 0) {
    vertex_table->set_scale(spec.nominal_vertices / static_cast<double>(n));
  }

  GraphDataset out;
  out.name = spec.name;
  out.vertices = vertex_table;
  out.edges = edge_table;
  return out;
}

GraphDataset LiveJournalGraph() {
  GraphSpec spec;
  spec.name = "livejournal";
  spec.nominal_vertices = 4.8e6;
  spec.nominal_edges = 69e6;
  spec.sample_vertices = 1200;
  spec.seed = 42;
  return MakePowerLawGraph(spec);
}

GraphDataset OrkutGraph() {
  GraphSpec spec;
  spec.name = "orkut";
  spec.nominal_vertices = 3.0e6;
  spec.nominal_edges = 117e6;
  spec.sample_vertices = 1000;
  spec.seed = 43;
  return MakePowerLawGraph(spec);
}

GraphDataset TwitterGraph() {
  GraphSpec spec;
  spec.name = "twitter";
  spec.nominal_vertices = 43e6;
  spec.nominal_edges = 1.4e9;
  spec.sample_vertices = 1500;
  spec.seed = 44;
  return MakePowerLawGraph(spec);
}

GraphDataset TwitterGraphWithCosts() {
  GraphSpec spec;
  spec.name = "twitter-costs";
  spec.nominal_vertices = 43e6;
  spec.nominal_edges = 1.4e9;
  spec.sample_vertices = 1500;
  spec.seed = 44;
  spec.with_costs = true;
  spec.initial_value = 1e18;  // SSSP: unreached
  return MakePowerLawGraph(spec);
}

CommunityPair MakeOverlappingCommunities() {
  CommunityPair out;
  out.a = LiveJournalGraph();

  // Community B: an independent web graph that shares roughly a third of
  // A's edges (same vertex-id space), so INTERSECT yields a real overlap.
  GraphSpec spec;
  spec.name = "webcommunity";
  spec.nominal_vertices = 5.8e6;
  spec.nominal_edges = 82e6;
  spec.sample_vertices = 1200;
  spec.seed = 45;
  GraphDataset b = MakePowerLawGraph(spec);

  // Replace a third of B's edges with A's edges.
  auto merged = std::make_shared<Table>(b.edges->schema());
  const Table& a_edges = *out.a.edges;
  const Table& b_edges = *b.edges;
  size_t shared = a_edges.num_rows() / 3;
  for (size_t i = 0; i < shared && i < a_edges.num_rows(); ++i) {
    merged->AppendRowFrom(a_edges, i * 3 % a_edges.num_rows());
  }
  for (size_t i = shared; i < b_edges.num_rows(); ++i) {
    merged->AppendRowFrom(b_edges, i);
  }
  merged->set_scale(b.edges->scale());
  b.edges = merged;
  out.b = std::move(b);
  return out;
}

TablePtr MakeAsciiLines(Bytes nominal_bytes, int sample_rows, uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"first", FieldType::kString}, {"second", FieldType::kString}});
  auto table = std::make_shared<Table>(schema);
  table->Reserve(sample_rows);
  static const char* kWords[] = {"alpha", "bravo", "charlie", "delta",  "echo",
                                 "foxtrot", "golf", "hotel",  "india", "juliett"};
  for (int i = 0; i < sample_rows; ++i) {
    std::string first = kWords[rng.NextBounded(10)];
    first += std::to_string(rng.NextBounded(100000));
    std::string second = kWords[rng.NextBounded(10)];
    second += "-";
    second += kWords[rng.NextBounded(10)];
    table->AddRow({std::move(first), std::move(second)});
  }
  double sample_bytes = table->sample_bytes();
  if (sample_bytes > 0) {
    table->set_scale(nominal_bytes / sample_bytes);
  }
  return table;
}

TablePtr MakeUniformKv(double nominal_rows, int sample_rows, int64_t key_range,
                       uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"k", FieldType::kInt64}, {"v", FieldType::kInt64}});
  std::vector<Column> cols({Column(FieldType::kInt64), Column(FieldType::kInt64)});
  cols[0].Reserve(sample_rows);
  cols[1].Reserve(sample_rows);
  for (int i = 0; i < sample_rows; ++i) {
    cols[0].mutable_ints()->push_back(rng.NextInRange(0, key_range - 1));
    cols[1].mutable_ints()->push_back(rng.NextInRange(0, 1000000));
  }
  auto table = std::make_shared<Table>(
      Table::FromColumns(std::move(schema), std::move(cols)));
  table->set_scale(nominal_rows / sample_rows);
  return table;
}

TpchDataset MakeTpch(double scale_factor, int sample_rows, uint64_t seed) {
  Rng rng(seed);
  TpchDataset out;

  // lineitem: ~6M rows per scale factor in real TPC-H.
  Schema li_schema({{"partkey", FieldType::kInt64},
                    {"quantity", FieldType::kDouble},
                    {"extendedprice", FieldType::kDouble}});
  const int64_t part_keys = std::max<int64_t>(200, sample_rows / 10);
  std::vector<Column> li_cols({Column(FieldType::kInt64),
                               Column(FieldType::kDouble),
                               Column(FieldType::kDouble)});
  for (Column& c : li_cols) {
    c.Reserve(sample_rows);
  }
  for (int i = 0; i < sample_rows; ++i) {
    li_cols[0].mutable_ints()->push_back(rng.NextInRange(0, part_keys - 1));
    li_cols[1].mutable_doubles()->push_back(1.0 + rng.NextDouble() * 49.0);
    li_cols[2].mutable_doubles()->push_back(900.0 + rng.NextDouble() * 100000.0);
  }
  auto lineitem = std::make_shared<Table>(
      Table::FromColumns(li_schema, std::move(li_cols)));
  // Size by bytes, not rows: the paper quotes 7.5 GB at SF 10 through 75 GB
  // at SF 100 for the Q17 input; lineitem dominates that footprint.
  lineitem->set_scale(0.72 * kGB * scale_factor / lineitem->sample_bytes());
  out.lineitem = lineitem;

  // part: 200k rows per scale factor.
  Schema part_schema({{"partkey", FieldType::kInt64},
                      {"brand", FieldType::kInt64},
                      {"container", FieldType::kInt64}});
  auto part = std::make_shared<Table>(part_schema);
  part->Reserve(part_keys);
  for (int64_t k = 0; k < part_keys; ++k) {
    part->AddRow({k, rng.NextInRange(1, 25), rng.NextInRange(1, 40)});
  }
  part->set_scale(0.03 * kGB * scale_factor / part->sample_bytes());
  out.part = part;
  return out;
}

NetflixDataset MakeNetflix(int sample_users, uint64_t seed) {
  Rng rng(seed);
  NetflixDataset out;

  Schema movie_schema({{"movie", FieldType::kInt64}, {"genre", FieldType::kInt64}});
  const int64_t kSampleMovies = 200;
  auto movies = std::make_shared<Table>(movie_schema);
  for (int64_t m = 0; m < kSampleMovies; ++m) {
    movies->AddRow({m, rng.NextInRange(0, 20)});
  }
  movies->set_scale(17000.0 / static_cast<double>(kSampleMovies));
  out.movies = movies;

  Schema rating_schema({{"user", FieldType::kInt64},
                        {"movie", FieldType::kInt64},
                        {"rating", FieldType::kDouble}});
  auto ratings = std::make_shared<Table>(rating_schema);
  for (int64_t u = 0; u < sample_users; ++u) {
    int64_t count = 5 + static_cast<int64_t>(rng.NextBounded(30));
    for (int64_t i = 0; i < count; ++i) {
      // Popularity-skewed movie choice, like the real data.
      int64_t m = static_cast<int64_t>(rng.NextZipf(kSampleMovies, 0.8));
      ratings->AddRow({u, m, 1.0 + static_cast<double>(rng.NextBounded(5))});
    }
  }
  // Paper: 100M-row / 2.5 GB ratings table.
  ratings->set_scale(100.0e6 / static_cast<double>(ratings->num_rows()));
  out.ratings = ratings;
  return out;
}

TablePtr MakePurchases(double nominal_rows, int sample_rows, int num_regions,
                       uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"uid", FieldType::kInt64},
                 {"region", FieldType::kInt64},
                 {"amount", FieldType::kDouble}});
  std::vector<Column> cols({Column(FieldType::kInt64), Column(FieldType::kInt64),
                            Column(FieldType::kDouble)});
  for (Column& c : cols) {
    c.Reserve(sample_rows);
  }
  int64_t num_users = std::max(10, sample_rows / 8);
  for (int i = 0; i < sample_rows; ++i) {
    cols[0].mutable_ints()->push_back(rng.NextInRange(0, num_users - 1));
    cols[1].mutable_ints()->push_back(rng.NextInRange(0, num_regions - 1));
    cols[2].mutable_doubles()->push_back(rng.NextDouble() * 500.0);
  }
  auto table = std::make_shared<Table>(
      Table::FromColumns(std::move(schema), std::move(cols)));
  table->set_scale(nominal_rows / sample_rows);
  return table;
}

KmeansDataset MakeKmeans(double nominal_points, int sample_points, int k,
                         uint64_t seed) {
  Rng rng(seed);
  KmeansDataset out;

  Schema point_schema({{"pid", FieldType::kInt64},
                       {"px", FieldType::kDouble},
                       {"py", FieldType::kDouble}});
  auto points = std::make_shared<Table>(point_schema);
  points->Reserve(sample_points);
  for (int i = 0; i < sample_points; ++i) {
    // Clustered around k latent centers so the algorithm has structure.
    int c = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k)));
    double cx = (c % 10) * 10.0;
    double cy = (c / 10) * 10.0;
    points->AddRow({static_cast<int64_t>(i), cx + rng.NextDouble() * 4.0 - 2.0,
                    cy + rng.NextDouble() * 4.0 - 2.0});
  }
  points->set_scale(nominal_points / sample_points);
  out.points = points;

  Schema center_schema({{"cid", FieldType::kInt64},
                        {"cx", FieldType::kDouble},
                        {"cy", FieldType::kDouble}});
  auto centers = std::make_shared<Table>(center_schema);
  for (int c = 0; c < k; ++c) {
    centers->AddRow({static_cast<int64_t>(c), (c % 10) * 10.0 + rng.NextDouble(),
                     (c / 10) * 10.0 + rng.NextDouble()});
  }
  out.centers = centers;
  return out;
}

}  // namespace musketeer
