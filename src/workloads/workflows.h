// The paper's evaluation workflows (§6.1): three batch (TPC-H Q17,
// top-shopper, NetFlix recommender), three iterative (PageRank, SSSP,
// k-means) and one hybrid (cross-community PageRank), expressed in the
// front-end languages the paper used them with.

#ifndef MUSKETEER_SRC_WORKLOADS_WORKFLOWS_H_
#define MUSKETEER_SRC_WORKLOADS_WORKFLOWS_H_

#include <cstdint>
#include <string>

namespace musketeer {

// TPC-H query 17 ("small-quantity-order revenue") in HiveQL; ~7 operators,
// three key repartitionings (multiple Hadoop jobs, one Naiad job).
std::string TpchQ17Hive();
// The same query in the Lindi front-end.
std::string TpchQ17Lindi();

// top-shopper (§6.5): filter purchases by region, aggregate per user, apply
// a spend threshold. Three operators, one shared scan when merged.
std::string TopShopperBeer(int64_t region, double threshold);

// NetFlix movie recommender (§6.4): 13 operators, data-intensive self-join.
// `max_movie` controls how many movies feed the prediction (the paper's
// x-axis). Inputs: ratings(user, movie, rating), movies(movie, genre).
std::string NetflixBeer(int64_t max_movie);
// Extended 18-operator variant used for the DAG-partitioning runtime
// experiment (Fig. 13).
std::string NetflixExtendedBeer(int64_t max_movie);

// Five-iteration PageRank in the GAS DSL (Listing 2).
std::string PageRankGas(int iterations);

// PageRank written relationally in BEER — exercises idiom recognition on a
// workflow that never mentions GAS (§4.3.1).
std::string PageRankBeer(int iterations);

// Single-source shortest paths in the GAS DSL (MIN gather + edge costs).
std::string SsspGas(int iterations);

// k-means clustering in BEER (CROSS JOIN formulation, §6.7 fn. 8).
// Inputs: points(pid, px, py), centers(cid, cx, cy).
std::string KmeansBeer(int iterations);

// Hybrid cross-community PageRank (§6.3): INTERSECT two edge sets, derive
// degrees, then run PageRank on the common sub-graph.
std::string CrossCommunityPageRankBeer(int iterations);

// The simple JOIN workflow of §2.1 / §7 (student comparison).
std::string SimpleJoinBeer();

// The PROJECT micro-benchmark of §2.1 (extract one column).
std::string ProjectBeer();

}  // namespace musketeer

#endif  // MUSKETEER_SRC_WORKLOADS_WORKFLOWS_H_
