// Seeded synthetic workflow generator for planner-scale experiments
// (DESIGN.md "Planner at scale").
//
// The paper's evaluation workflows top out at ~30 operators; production
// query graphs reach hundreds. MakeSyntheticDag grows a BEER program to an
// exact outer-operator count (100–1000 and beyond) from a seeded mix of
// structural motifs — chains, diamonds (split/join), fan-out, UNION fan-in,
// and WHILE blocks — over a canonical (k INT64, v INT64) schema, so the
// partitioner sees DAG shapes it cannot cheat with a linear scan.
//
// Everything is a pure function of the spec (SplitMix64 throughout, no
// std::random_device): the same spec yields the same program, the same
// input tables and therefore the same partitioning and the same output
// bytes on every machine. Only order-insensitive operators are emitted
// (no TOPN/SORT/MAX), so results stay Table::Identical across engine and
// job-boundary regroupings — the property the re-planning sweep asserts.

#ifndef MUSKETEER_SRC_WORKLOADS_SYNTHETIC_DAG_H_
#define MUSKETEER_SRC_WORKLOADS_SYNTHETIC_DAG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/relational/table.h"

namespace musketeer {

struct SyntheticDagSpec {
  // Outer operators the generated program parses to — exactly (WHILE bodies
  // are nested DAGs and do not count; the partitioner sees a WHILE as one
  // operator, matching how it prices it).
  int target_ops = 100;
  uint64_t seed = 1;
  // Base (k, v) relations feeding the DAG; named syn0..syn{n-1}.
  int base_relations = 4;
  // Emit WHILE blocks (1 outer op each, 2-op body). Off for strictly
  // relational DAGs.
  bool include_while = true;
  // Nominal scale of each base relation (engines execute the sample).
  double nominal_rows = 4e6;
  int sample_rows = 64;
  int64_t key_range = 1000;
};

struct SyntheticDagWorkload {
  std::string source;           // the BEER program
  std::string result_relation;  // the single sink
  // Base tables keyed by relation name, ready to Dfs::Put.
  std::vector<std::pair<std::string, TablePtr>> inputs;
  int operator_count = 0;  // outer operators `source` parses to
};

// Deterministically generates a workload with exactly spec.target_ops outer
// operators. target_ops must be >= 1; base_relations >= 1.
SyntheticDagWorkload MakeSyntheticDag(const SyntheticDagSpec& spec);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_WORKLOADS_SYNTHETIC_DAG_H_
