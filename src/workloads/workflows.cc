#include "src/workloads/workflows.h"

#include <sstream>

namespace musketeer {

std::string TpchQ17Hive() {
  // Note: the per-part average quantity is computed over *all* lineitems of
  // the part (the query's correlated subquery), not just the brand-filtered
  // ones — so the GROUP BY processes the full lineitem table.
  return R"(
    SELECT partkey, quantity, extendedprice FROM lineitem AS li;
    SELECT partkey, AVG(quantity) avg_qty FROM li GROUP BY partkey AS part_avg;
    SELECT partkey FROM part WHERE brand = 23 AND container = 13 AS brand_parts;
    li JOIN brand_parts ON li.partkey = brand_parts.partkey AS brand_lines;
    brand_lines JOIN part_avg ON brand_lines.partkey = part_avg.partkey
      AS with_avg;
    SELECT SUM(extendedprice) total FROM with_avg
      WHERE quantity < 0.2 * avg_qty AS q17_result;
  )";
}

std::string TpchQ17Lindi() {
  return R"(
    li = lineitem.Select(partkey, quantity, extendedprice);
    part_avg = li.GroupBy(partkey).Avg(quantity, avg_qty);
    brand_parts = part.Where(brand = 23 AND container = 13).Select(partkey);
    brand_lines = li.Join(brand_parts, partkey, partkey);
    with_avg = brand_lines.Join(part_avg, partkey, partkey);
    q17_result = with_avg.Where(quantity < 0.2 * avg_qty)
                         .Sum(extendedprice, total);
  )";
}

std::string TopShopperBeer(int64_t region, double threshold) {
  std::ostringstream os;
  os << "region_purchases = SELECT * FROM purchases WHERE region = " << region
     << ";\n"
     << "user_totals = AGG SUM(amount) AS total FROM region_purchases "
        "GROUP BY uid;\n"
     << "top_shoppers = SELECT * FROM user_totals WHERE total > " << threshold
     << ";\n";
  return os.str();
}

std::string NetflixBeer(int64_t max_movie) {
  std::ostringstream os;
  os << "sel_movies = SELECT * FROM movies WHERE movie < " << max_movie << ";\n";
  os << R"(
    rated = JOIN ratings, sel_movies ON ratings.movie = sel_movies.movie;
    rated_b = MAP movie AS movie2, user AS user2, rating AS rating2 FROM rated;
    pairs = JOIN rated, rated_b ON rated.user = rated_b.user2;
    scored = MAP movie, movie2, rating * rating2 AS s FROM pairs;
    sim = AGG SUM(s) AS simsum, COUNT(s) AS n FROM scored GROUP BY movie, movie2;
    sim_strong = SELECT * FROM sim WHERE n >= 8;
    cand = JOIN sim_strong, rated ON sim_strong.movie = rated.movie;
    contrib = MAP user, movie2, simsum / n * rating AS c FROM cand;
    pred = AGG SUM(c) AS score FROM contrib GROUP BY user, movie2;
    best = AGG MAX(score) AS best_score FROM pred GROUP BY user;
    top = JOIN pred, best ON pred.user = best.user;
    recommendation = SELECT * FROM top WHERE score >= best_score;
  )";
  return os.str();
}

std::string NetflixExtendedBeer(int64_t max_movie) {
  std::ostringstream os;
  // The 13-operator recommender plus a post-processing tail: per-user
  // normalized scores joined back against the movie list with popularity
  // aggregation — the 18-operator version used to stress the partitioners.
  os << NetflixBeer(max_movie);
  os << R"(
    rec_named = JOIN recommendation, sel_movies
                ON recommendation.movie2 = sel_movies.movie;
    rec_cols = MAP user, movie2, score, genre AS g FROM rec_named;
    genre_pop = AGG COUNT(user) AS fans FROM rec_cols GROUP BY g;
    top_genre = MAX(fans) FROM genre_pop;
    final_report = CROSSJOIN top_genre, rec_cols;
  )";
  return os.str();
}

std::string PageRankGas(int iterations) {
  std::ostringstream os;
  os << "GATHER = { SUM (vertex_value) }\n"
     << "APPLY = {\n"
     << "  MUL [vertex_value, 0.85]\n"
     << "  SUM [vertex_value, 0.15]\n"
     << "}\n"
     << "SCATTER = { DIV [vertex_value, vertex_degree] }\n"
     << "ITERATION_STOP = (iteration < " << iterations << ")\n"
     << "ITERATION = { SUM [iteration, 1] }\n"
     << "RESULT = pagerank\n";
  return os.str();
}

std::string PageRankBeer(int iterations) {
  std::ostringstream os;
  os << "WHILE " << iterations << " LOOP v = vertices UPDATE v_next {\n"
     << R"(
      contribs = JOIN edges, v ON edges.src = v.id;
      msgs = MAP dst AS id, vertex_value / vertex_degree AS msg FROM contribs;
      gathered = AGG SUM(msg) AS acc FROM msgs GROUP BY id;
      rejoined = JOIN v, gathered ON v.id = gathered.id;
      v_next = MAP id, acc * 0.85 + 0.15 AS vertex_value, vertex_degree
               FROM rejoined;
    } YIELD v_next AS pagerank;
  )";
  return os.str();
}

std::string SsspGas(int iterations) {
  std::ostringstream os;
  os << "GATHER = { MIN (vertex_value) }\n"
     << "APPLY = { }\n"  // new distance = min over incoming candidates
     << "SCATTER = { SUM [vertex_value, cost] }\n"
     << "ITERATION_STOP = (iteration < " << iterations << ")\n"
     << "RESULT = sssp\n";
  return os.str();
}

std::string KmeansBeer(int iterations) {
  std::ostringstream os;
  os << "WHILE " << iterations << " LOOP cs = centers UPDATE new_centers {\n"
     << R"(
      pairs = CROSSJOIN points, cs;
      dists = MAP pid, cid, px, py,
              (px - cx) * (px - cx) + (py - cy) * (py - cy) AS d FROM pairs;
      nearest = AGG MIN(d) AS best_d FROM dists GROUP BY pid;
      tagged = JOIN dists, nearest ON dists.pid = nearest.pid;
      assigned = SELECT * FROM tagged WHERE d <= best_d;
      new_centers = AGG AVG(px) AS cx, AVG(py) AS cy FROM assigned
                    GROUP BY cid;
    } YIELD new_centers AS kmeans_centers;
  )";
  return os.str();
}

std::string CrossCommunityPageRankBeer(int iterations) {
  std::ostringstream os;
  os << R"(
    common_edges = INTERSECT lj_edges, web_edges;
    degrees = AGG COUNT(dst) AS vertex_degree FROM common_edges GROUP BY src;
    verts = MAP src AS id, 1.0 AS vertex_value, vertex_degree FROM degrees;
  )";
  os << "WHILE " << iterations << " LOOP v = verts UPDATE v_next {\n"
     << R"(
      contribs = JOIN common_edges, v ON common_edges.src = v.id;
      msgs = MAP dst AS id, vertex_value / vertex_degree AS msg FROM contribs;
      gathered = AGG SUM(msg) AS acc FROM msgs GROUP BY id;
      rejoined = JOIN v, gathered ON v.id = gathered.id;
      v_next = MAP id, acc * 0.85 + 0.15 AS vertex_value, vertex_degree
               FROM rejoined;
    } YIELD v_next AS cc_pagerank;
  )";
  return os.str();
}

std::string SimpleJoinBeer() {
  return "joined = JOIN vertices_rel, edges_rel "
         "ON vertices_rel.id = edges_rel.src;\n";
}

std::string ProjectBeer() {
  return "first_col = SELECT first FROM lines;\n";
}

}  // namespace musketeer
