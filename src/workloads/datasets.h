// Synthetic data sets standing in for the paper's inputs (see DESIGN.md,
// substitution #4).
//
// Every generator materializes a deterministic, scaled-down *sample* and sets
// the table's `scale` so that nominal_rows()/nominal_bytes() match the data
// set the paper used (e.g., the Twitter graph's 43M vertices / 1.4B edges).
// Engines execute the sample for correctness and charge simulated time
// against the nominal sizes.

#ifndef MUSKETEER_SRC_WORKLOADS_DATASETS_H_
#define MUSKETEER_SRC_WORKLOADS_DATASETS_H_

#include <cstdint>
#include <string>

#include "src/relational/table.h"

namespace musketeer {

// ---- Graphs ---------------------------------------------------------------

struct GraphDataset {
  std::string name;
  TablePtr vertices;  // (id, vertex_value, vertex_degree)
  TablePtr edges;     // (src, dst) or (src, dst, cost) when with_costs
};

struct GraphSpec {
  std::string name;
  double nominal_vertices = 0;
  double nominal_edges = 0;
  int sample_vertices = 1000;
  uint64_t seed = 1;
  double initial_value = 1.0;  // vertex_value seed (PageRank rank)
  bool with_costs = false;     // adds an edge cost column (SSSP)
  double zipf_alpha = 0.7;     // in-degree skew
};

// Power-law random graph with the requested nominal dimensions.
GraphDataset MakePowerLawGraph(const GraphSpec& spec);

// The paper's graphs (§2.1/2.2, §6): sizes from the paper, structure synthetic.
GraphDataset LiveJournalGraph();  // 4.8M vertices, 69M edges
GraphDataset OrkutGraph();        // 3.0M vertices, 117M edges
GraphDataset TwitterGraph();      // 43M vertices, 1.4B edges
GraphDataset TwitterGraphWithCosts();
// Synthetic second web community for cross-community PageRank (§6.3):
// 5.8M vertices / 82M edges, sharing edges with LiveJournal.
struct CommunityPair {
  GraphDataset a;  // LiveJournal-like
  GraphDataset b;  // web-community-like; shares ~1/3 of a's edges
};
CommunityPair MakeOverlappingCommunities();

// ---- Relational tables ----------------------------------------------------

// Two-column ASCII lines for the PROJECT micro-benchmark (Fig. 2a):
// nominal footprint `nominal_bytes`, sample of `sample_rows` rows.
TablePtr MakeAsciiLines(Bytes nominal_bytes, int sample_rows, uint64_t seed);

// Uniform (key, value) rows for the symmetric JOIN micro-benchmark.
TablePtr MakeUniformKv(double nominal_rows, int sample_rows, int64_t key_range,
                       uint64_t seed);

// TPC-H-like tables for query 17 at the given scale factor: lineitem
// (partkey, quantity, extendedprice) and part (partkey, brand, container).
struct TpchDataset {
  TablePtr lineitem;
  TablePtr part;
};
TpchDataset MakeTpch(double scale_factor, int sample_rows = 20000,
                     uint64_t seed = 7);

// NetFlix-like tables (§6.4): ratings (user, movie, rating) with 100M nominal
// rows / 2.5 GB, and a 17,000-row movie list (movie, genre).
struct NetflixDataset {
  TablePtr ratings;
  TablePtr movies;
};
NetflixDataset MakeNetflix(int sample_users = 400, uint64_t seed = 11);

// Purchases (uid, region, amount) for top-shopper (§6.5).
TablePtr MakePurchases(double nominal_rows, int sample_rows, int num_regions,
                       uint64_t seed);

// k-means: points (pid, px, py) and initial centers (cid, cx, cy).
struct KmeansDataset {
  TablePtr points;   // 100M nominal rows (paper: 100M random points)
  TablePtr centers;  // k rows
};
KmeansDataset MakeKmeans(double nominal_points, int sample_points, int k,
                         uint64_t seed);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_WORKLOADS_DATASETS_H_
