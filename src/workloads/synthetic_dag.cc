#include "src/workloads/synthetic_dag.h"

#include <algorithm>
#include <sstream>

#include "src/base/rng.h"
#include "src/workloads/datasets.h"

namespace musketeer {

namespace {

// Generation state: the set of live (k, v) relations any motif may consume.
// Every motif below keeps the canonical schema, so any live relation can
// feed any motif and the final fan-in can UNION arbitrary pairs.
struct Gen {
  std::ostringstream out;
  std::vector<std::string> live;
  Rng rng;
  int emitted = 0;   // outer operators written so far
  int counter = 0;   // fresh-name counter

  explicit Gen(uint64_t seed) : rng(seed) {}

  std::string Fresh() { return "r" + std::to_string(counter++); }

  // Removes and returns a uniformly chosen live relation.
  std::string Take() {
    size_t i = rng.NextBounded(live.size());
    std::string name = live[i];
    live[i] = live.back();
    live.pop_back();
    return name;
  }

  int64_t Threshold() { return rng.NextInRange(200000, 900000); }
  int64_t Delta() { return rng.NextInRange(1, 97); }
};

// One linear operator: filter, column math, re-aggregation or dedup.
// All four preserve (k, v).
void EmitChain(Gen* g) {
  std::string in = g->Take();
  std::string out = g->Fresh();
  switch (g->rng.NextBounded(4)) {
    case 0:
      g->out << out << " = SELECT * FROM " << in << " WHERE v < "
             << g->Threshold() << ";\n";
      break;
    case 1:
      g->out << out << " = MAP k, v + " << g->Delta() << " AS v FROM " << in
             << ";\n";
      break;
    case 2:
      g->out << out << " = AGG SUM(v) AS v FROM " << in << " GROUP BY k;\n";
      break;
    default:
      g->out << out << " = DISTINCT " << in << ";\n";
      break;
  }
  g->emitted += 1;
  g->live.push_back(out);
}

// Split/rejoin (4 operators): two branches of one producer meet again in a
// key join, then fold back to (k, v). The partitioner must decide whether
// the branches share the producer's job or repartition at the join.
void EmitDiamond(Gen* g) {
  std::string in = g->Take();
  std::string a = g->Fresh();
  std::string b = g->Fresh();
  std::string j = g->Fresh();
  std::string out = g->Fresh();
  g->out << a << " = SELECT * FROM " << in << " WHERE v < " << g->Threshold()
         << ";\n"
         << b << " = MAP k, v + " << g->Delta() << " AS w FROM " << in
         << ";\n"
         << j << " = JOIN " << a << ", " << b << " ON " << a << ".k = " << b
         << ".k;\n"
         << out << " = MAP k, v + w AS v FROM " << j << ";\n";
  g->emitted += 4;
  g->live.push_back(out);
}

// Fan-out (2 operators): one producer feeds two independent consumers that
// both stay live — the extra live relation is paid for by one more closing
// UNION, which the budget accounting below reserves.
void EmitFanOut(Gen* g) {
  std::string in = g->Take();
  std::string a = g->Fresh();
  std::string b = g->Fresh();
  g->out << a << " = SELECT * FROM " << in << " WHERE v < " << g->Threshold()
         << ";\n"
         << b << " = MAP k, v + " << g->Delta() << " AS v FROM " << in
         << ";\n";
  g->emitted += 2;
  g->live.push_back(a);
  g->live.push_back(b);
}

// Fan-in (1 operator): two live branches merge.
void EmitUnion(Gen* g) {
  std::string a = g->Take();
  std::string b = g->Take();
  std::string out = g->Fresh();
  g->out << out << " = UNION " << a << ", " << b << ";\n";
  g->emitted += 1;
  g->live.push_back(out);
}

// One WHILE block: a single outer operator (the partitioner prices the body
// via the WHILE node, §5), with a 2-operator loop body.
void EmitWhile(Gen* g) {
  std::string in = g->Take();
  std::string lv = "lv" + std::to_string(g->counter);
  std::string step = "st" + std::to_string(g->counter);
  std::string out = g->Fresh();
  g->out << "WHILE 2 LOOP " << lv << " = " << in << " UPDATE " << lv
         << "_next {\n"
         << "  " << step << " = MAP k, v + 1 AS v FROM " << lv << ";\n"
         << "  " << lv << "_next = SELECT * FROM " << step
         << " WHERE v >= 0;\n"
         << "} YIELD " << lv << "_next AS " << out << ";\n";
  g->emitted += 1;
  g->live.push_back(out);
}

}  // namespace

SyntheticDagWorkload MakeSyntheticDag(const SyntheticDagSpec& spec) {
  const int target = std::max(1, spec.target_ops);
  // A closing UNION chain folds the live set into one sink; with B base
  // relations that is at least B-1 operators, so clamp B for tiny targets.
  const int bases =
      std::min(std::max(1, spec.base_relations), target + 1);

  Gen g(spec.seed);
  SyntheticDagWorkload wl;
  for (int i = 0; i < bases; ++i) {
    std::string name = "syn" + std::to_string(i);
    // Vary nominal sizes so the cost model sees asymmetric branches.
    double rows = spec.nominal_rows * static_cast<double>(1 + i % 3);
    wl.inputs.emplace_back(
        name, MakeUniformKv(rows, std::max(1, spec.sample_rows),
                            std::max<int64_t>(1, spec.key_range),
                            spec.seed + static_cast<uint64_t>(i)));
    g.live.push_back(std::move(name));
  }

  // Budget: `rem` counts operators still to spend on motifs after reserving
  // live.size()-1 closing UNIONs. Chains cost exactly 1, so any remainder
  // lands exactly on the target.
  auto rem = [&] {
    return target - g.emitted - (static_cast<int>(g.live.size()) - 1);
  };
  while (rem() > 0) {
    const uint64_t pick = g.rng.NextBounded(100);
    if (pick < 20 && rem() >= 4) {
      EmitDiamond(&g);
    } else if (pick < 35 && rem() >= 3) {
      EmitFanOut(&g);
    } else if (pick < 45 && g.live.size() >= 3) {
      EmitUnion(&g);  // rem unchanged: 1 op emitted, 1 closing UNION saved
    } else if (pick < 60 && spec.include_while) {
      EmitWhile(&g);
    } else {
      EmitChain(&g);
    }
  }
  while (g.live.size() > 1) {
    EmitUnion(&g);
  }

  wl.result_relation = g.live.front();
  wl.operator_count = g.emitted;
  wl.source = g.out.str();
  return wl;
}

}  // namespace musketeer
