#include "src/scheduler/partition_strategy.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/base/parallel.h"
#include "src/base/rng.h"

namespace musketeer {

namespace {

std::vector<EngineKind> EnginesOrDefault(const PlannerConfig& config) {
  if (!config.engines.empty()) {
    return config.engines;
  }
  return std::vector<EngineKind>(kAllEngines.begin(), kAllEngines.end());
}

// Operator (non-INPUT) ids in topological order. Node ids are assigned in
// construction order, which the front-ends emit depth-first — this is the
// single linear ordering the DP heuristic explores (§5.1.2, §8/Fig. 16).
std::vector<int> OperatorOrder(const Dag& dag) {
  std::vector<int> ops;
  for (const OperatorNode& n : dag.nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  return ops;
}

// Randomized Kahn's algorithm: an alternative topological order of the
// operators. A pure function of `seed` — no std::random_device anywhere —
// so any multi-order run replays bit-identically.
std::vector<int> RandomTopoOrder(const Dag& dag, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> indegree(dag.num_nodes(), 0);
  for (const OperatorNode& n : dag.nodes()) {
    for (int in : n.inputs) {
      (void)in;
      ++indegree[n.id];
    }
  }
  std::vector<int> ready;
  for (const OperatorNode& n : dag.nodes()) {
    if (indegree[n.id] == 0) {
      ready.push_back(n.id);
    }
  }
  std::vector<int> order;
  while (!ready.empty()) {
    size_t pick = rng.NextBounded(ready.size());
    int id = ready[pick];
    ready.erase(ready.begin() + static_cast<long>(pick));
    if (dag.node(id).kind != OpKind::kInput) {
      order.push_back(id);
    }
    for (int c : dag.ConsumersOf(id)) {
      if (--indegree[c] == 0) {
        ready.push_back(c);
      }
    }
  }
  return order;
}

// Cheapest engine for one job; kInfiniteCost if none can run it.
std::pair<EngineKind, double> BestEngine(const Dag& dag, const CostModel& model,
                                         const std::vector<Bytes>& sizes,
                                         const std::vector<int>& ops,
                                         const std::vector<EngineKind>& engines) {
  EngineKind best = engines[0];
  double best_cost = kInfiniteCost;
  for (EngineKind e : engines) {
    double c = model.JobCost(dag, ops, e, sizes);
    if (c < best_cost) {
      best_cost = c;
      best = e;
    }
  }
  return {best, best_cost};
}

// Effective DP merge window. Unbounded DP is O(N²) segments with O(len)
// cost evaluations each — cubic, and dead at 1000 operators. A window keeps
// planning linear in N while giving up nothing in practice: a single job
// spanning dozens of operators never wins on cost (PUSH/PULL amortization
// saturates long before that), so segments beyond the window are noise.
int EffectiveSegmentCap(const PlannerConfig& config, int n) {
  if (config.dp_segment_cap > 0) {
    return config.dp_segment_cap;
  }
  return n > 64 ? 24 : n;
}

StatusOr<Partitioning> PartitionDpOnOrder(const Dag& dag, const CostModel& model,
                                          const std::vector<Bytes>& sizes,
                                          const PlannerConfig& config,
                                          const std::vector<int>& order) {
  std::vector<EngineKind> engines = EnginesOrDefault(config);
  const int n = static_cast<int>(order.size());
  if (n == 0) {
    return InvalidArgumentError("workflow has no operators");
  }
  const int cap = std::max(1, EffectiveSegmentCap(config, n));

  // best[i]: cheapest way to run the first i operators; boundary[i]/engine[i]
  // reconstruct the final segment of that prefix.
  std::vector<double> best(n + 1, kInfiniteCost);
  std::vector<int> boundary(n + 1, 0);
  std::vector<EngineKind> engine_of(n + 1, engines[0]);
  best[0] = 0;

  for (int i = 1; i <= n; ++i) {
    int min_k = config.enable_merging ? std::max(0, i - cap) : i - 1;
    for (int k = i - 1; k >= min_k; --k) {
      if (best[k] == kInfiniteCost) {
        continue;
      }
      std::vector<int> segment(order.begin() + k, order.begin() + i);
      auto [eng, cost] = BestEngine(dag, model, sizes, segment, engines);
      if (cost == kInfiniteCost) {
        continue;
      }
      if (best[k] + cost < best[i]) {
        best[i] = best[k] + cost;
        boundary[i] = k;
        engine_of[i] = eng;
      }
    }
  }

  if (best[n] == kInfiniteCost) {
    return FailedPreconditionError(
        "no engine combination can execute this workflow");
  }

  Partitioning out;
  out.total_cost = best[n];
  int i = n;
  while (i > 0) {
    int k = boundary[i];
    JobAssignment job;
    job.ops.assign(order.begin() + k, order.begin() + i);
    job.engine = engine_of[i];
    job.cost = best[i] - best[k];
    out.jobs.push_back(std::move(job));
    i = k;
  }
  std::reverse(out.jobs.begin(), out.jobs.end());
  return out;
}

// DP over the construction order plus `extra_orders` seeded shuffles; the
// cheapest partitioning over all orders wins (§8's remedy for merge
// opportunities one linear order breaks, Fig. 16).
StatusOr<Partitioning> PartitionDpMulti(const Dag& dag, const CostModel& model,
                                        const std::vector<Bytes>& sizes,
                                        const PlannerConfig& config,
                                        int orders) {
  auto best = PartitionDpOnOrder(dag, model, sizes, config, OperatorOrder(dag));
  for (int i = 1; i < orders; ++i) {
    std::vector<int> order =
        RandomTopoOrder(dag, config.dp_order_seed + static_cast<uint64_t>(i));
    auto candidate = PartitionDpOnOrder(dag, model, sizes, config, order);
    if (!candidate.ok()) {
      continue;
    }
    if (!best.ok() || candidate->total_cost < best->total_cost) {
      best = std::move(candidate);
    }
  }
  return best;
}

bool ConnectedToJob(const Dag& dag, int op, const std::vector<int>& job) {
  for (int in : dag.node(op).inputs) {
    for (int member : job) {
      if (member == in) {
        return true;
      }
    }
  }
  return false;
}

bool SomeEngineRuns(const Dag& dag, const std::vector<EngineKind>& engines,
                    const std::vector<int>& job) {
  for (EngineKind e : engines) {
    if (BackendFor(e).CanRunAsSingleJob(dag, job)) {
      return true;
    }
  }
  return false;
}

// Exhaustive enumeration state. One instance searches either the full tree
// (Run) or, when seeded with a prefix assignment, one subtree of the
// parallel search (Seed + Search).
class ExhaustiveSearch {
 public:
  ExhaustiveSearch(const Dag& dag, const CostModel& model,
                   const std::vector<Bytes>& sizes,
                   const std::vector<EngineKind>& engines, bool enable_merging)
      : dag_(dag),
        model_(model),
        sizes_(sizes),
        engines_(engines),
        merging_(enable_merging),
        order_(OperatorOrder(dag)) {}

  StatusOr<Partitioning> Run() {
    if (order_.empty()) {
      return InvalidArgumentError("workflow has no operators");
    }
    assignment_.assign(dag_.num_nodes(), -1);
    Recurse(0);
    if (best_cost_ == kInfiniteCost) {
      return FailedPreconditionError(
          "no engine combination can execute this workflow");
    }
    Partitioning out;
    out.total_cost = best_cost_;
    out.used_exhaustive = true;
    out.jobs = best_jobs_;
    return out;
  }

  // Seeds the search with a fixed assignment of the first `idx` operators in
  // enumeration order; Search() then explores exactly the completions of
  // that prefix (one subtree of the sequential recursion).
  void Seed(const std::vector<std::vector<int>>& jobs, size_t idx) {
    assignment_.assign(dag_.num_nodes(), -1);
    jobs_ = jobs;
    for (size_t j = 0; j < jobs_.size(); ++j) {
      for (int op : jobs_[j]) {
        assignment_[op] = static_cast<int>(j);
      }
    }
    seed_idx_ = idx;
  }

  // A shared lower bound on the cost of the best candidate any concurrent
  // subtree has committed. Pruning against it is strict (>), so a candidate
  // tying the global minimum is never pruned — the winning subtree finds
  // exactly the candidate the sequential search would.
  void set_shared_bound(std::atomic<double>* bound) { shared_bound_ = bound; }

  void Search() { Recurse(seed_idx_); }

  bool found() const { return best_cost_ < kInfiniteCost; }
  double best_cost() const { return best_cost_; }
  const std::vector<JobAssignment>& best_jobs() const { return best_jobs_; }

 private:
  void Recurse(size_t idx) {
    if (idx == order_.size()) {
      Finalize();
      return;
    }
    int op = order_[idx];
    if (merging_) {
      // Try extending every existing job the operator connects to.
      for (size_t j = 0; j < jobs_.size(); ++j) {
        if (!ConnectedToJob(dag_, op, jobs_[j])) {
          continue;
        }
        jobs_[j].push_back(op);
        if (SomeEngineRuns(dag_, engines_, jobs_[j])) {
          assignment_[op] = static_cast<int>(j);
          Recurse(idx + 1);
          assignment_[op] = -1;
        }
        jobs_[j].pop_back();
      }
    }
    // Or start a fresh job.
    jobs_.push_back({op});
    assignment_[op] = static_cast<int>(jobs_.size()) - 1;
    Recurse(idx + 1);
    assignment_[op] = -1;
    jobs_.pop_back();
  }

  // Quotient graph over jobs must be acyclic (a job can only start once all
  // jobs it reads from finished).
  bool QuotientAcyclic() const {
    size_t m = jobs_.size();
    std::vector<std::unordered_set<int>> succ(m);
    std::vector<int> indegree(m, 0);
    for (size_t j = 0; j < m; ++j) {
      for (int op : jobs_[j]) {
        for (int in : dag_.node(op).inputs) {
          int pj = assignment_[in];
          if (pj >= 0 && pj != static_cast<int>(j)) {
            if (succ[pj].insert(static_cast<int>(j)).second) {
              ++indegree[j];
            }
          }
        }
      }
    }
    std::vector<int> queue;
    for (size_t j = 0; j < m; ++j) {
      if (indegree[j] == 0) {
        queue.push_back(static_cast<int>(j));
      }
    }
    size_t seen = 0;
    while (seen < queue.size()) {
      int j = queue[seen++];
      for (int s : succ[j]) {
        if (--indegree[s] == 0) {
          queue.push_back(s);
        }
      }
    }
    return seen == m;
  }

  void Finalize() {
    if (!QuotientAcyclic()) {
      return;
    }
    double total = 0;
    std::vector<JobAssignment> result;
    for (const std::vector<int>& job : jobs_) {
      auto [eng, cost] = CachedBestEngine(job);
      if (cost == kInfiniteCost) {
        return;
      }
      total += cost;
      if (total >= best_cost_) {
        return;  // prune
      }
      if (shared_bound_ != nullptr &&
          total > shared_bound_->load(std::memory_order_relaxed)) {
        return;  // prune against concurrent subtrees (strict: ties survive)
      }
      JobAssignment a;
      a.ops = job;
      std::sort(a.ops.begin(), a.ops.end());
      a.engine = eng;
      a.cost = cost;
      result.push_back(std::move(a));
    }
    best_cost_ = total;
    if (shared_bound_ != nullptr) {
      double cur = shared_bound_->load(std::memory_order_relaxed);
      while (total < cur &&
             !shared_bound_->compare_exchange_weak(cur, total,
                                                   std::memory_order_relaxed)) {
      }
    }
    // Order jobs topologically over the quotient graph so downstream
    // execution can run them front-to-back.
    size_t m = result.size();
    std::vector<std::unordered_set<int>> succ(m);
    std::vector<int> indegree(m, 0);
    std::unordered_map<int, int> job_of;
    for (size_t j = 0; j < m; ++j) {
      for (int op : result[j].ops) {
        job_of[op] = static_cast<int>(j);
      }
    }
    for (size_t j = 0; j < m; ++j) {
      for (int op : result[j].ops) {
        for (int in : dag_.node(op).inputs) {
          auto it = job_of.find(in);
          if (it != job_of.end() && it->second != static_cast<int>(j)) {
            if (succ[it->second].insert(static_cast<int>(j)).second) {
              ++indegree[j];
            }
          }
        }
      }
    }
    std::vector<JobAssignment> ordered;
    std::vector<int> queue;
    for (size_t j = 0; j < m; ++j) {
      if (indegree[j] == 0) {
        queue.push_back(static_cast<int>(j));
      }
    }
    // Stable tie-break by smallest op id keeps output deterministic.
    std::sort(queue.begin(), queue.end(), [&result](int a, int b) {
      return result[a].ops.front() < result[b].ops.front();
    });
    size_t head = 0;
    while (head < queue.size()) {
      int j = queue[head++];
      ordered.push_back(result[j]);
      for (int s : succ[j]) {
        if (--indegree[s] == 0) {
          queue.push_back(s);
        }
      }
    }
    best_jobs_ = std::move(ordered);
  }

  std::pair<EngineKind, double> CachedBestEngine(const std::vector<int>& job) {
    std::vector<int> key = job;
    std::sort(key.begin(), key.end());
    auto it = cost_cache_.find(key);
    if (it != cost_cache_.end()) {
      return it->second;
    }
    auto result = BestEngine(dag_, model_, sizes_, key, engines_);
    cost_cache_.emplace(std::move(key), result);
    return result;
  }

  const Dag& dag_;
  const CostModel& model_;
  const std::vector<Bytes>& sizes_;
  std::vector<EngineKind> engines_;
  bool merging_;
  std::vector<int> order_;

  std::vector<std::vector<int>> jobs_;
  std::vector<int> assignment_;  // node id -> job index (-1 = unassigned)
  size_t seed_idx_ = 0;
  std::atomic<double>* shared_bound_ = nullptr;
  double best_cost_ = kInfiniteCost;
  std::vector<JobAssignment> best_jobs_;
  std::map<std::vector<int>, std::pair<EngineKind, double>> cost_cache_;
};

// A fixed assignment of the first `idx` operators (in enumeration order) —
// the root of one search subtree.
struct SearchPrefix {
  std::vector<std::vector<int>> jobs;
  size_t idx = 0;
};

// Level-synchronous expansion of the recursion's first levels until at least
// `target` subtree roots exist. Children are generated in the exact order
// Recurse tries them (extend job 0..k, then a fresh job), so the returned
// prefixes enumerate subtrees in the sequential DFS encounter order — the
// property the deterministic reduction in the exhaustive strategy relies on.
std::vector<SearchPrefix> EnumeratePrefixes(
    const Dag& dag, const std::vector<EngineKind>& engines, bool merging,
    const std::vector<int>& order, size_t target) {
  std::vector<SearchPrefix> frontier{SearchPrefix{}};
  while (frontier.size() < target && frontier.front().idx < order.size()) {
    std::vector<SearchPrefix> next;
    for (const SearchPrefix& p : frontier) {
      int op = order[p.idx];
      if (merging) {
        for (size_t j = 0; j < p.jobs.size(); ++j) {
          if (!ConnectedToJob(dag, op, p.jobs[j])) {
            continue;
          }
          SearchPrefix child = p;
          child.jobs[j].push_back(op);
          child.idx = p.idx + 1;
          if (SomeEngineRuns(dag, engines, child.jobs[j])) {
            next.push_back(std::move(child));
          }
        }
      }
      SearchPrefix fresh = p;
      fresh.jobs.push_back({op});
      fresh.idx = p.idx + 1;
      next.push_back(std::move(fresh));
    }
    frontier = std::move(next);
  }
  return frontier;
}

StatusOr<Partitioning> RunExhaustive(const Dag& dag, const CostModel& model,
                                     const std::vector<Bytes>& sizes,
                                     const PlannerConfig& config) {
  std::vector<EngineKind> engines = EnginesOrDefault(config);
  std::vector<int> order = OperatorOrder(dag);
  if (order.empty()) {
    return InvalidArgumentError("workflow has no operators");
  }
  int threads = ParallelThreads();
  if (threads <= 1 || order.size() < 4) {
    ExhaustiveSearch search(dag, model, sizes, engines, config.enable_merging);
    return search.Run();
  }

  // Parallel search: fan the top levels of the enumeration out as seeded
  // subtree searches sharing a best-cost bound, then reduce
  // deterministically. Strict-> pruning plus a strict-< reduction in subtree
  // (DFS encounter) order make the chosen partitioning identical to the
  // sequential search's, independent of thread scheduling.
  std::vector<SearchPrefix> prefixes = EnumeratePrefixes(
      dag, engines, config.enable_merging, order,
      static_cast<size_t>(threads) * 4);
  std::atomic<double> bound{kInfiniteCost};
  std::vector<std::unique_ptr<ExhaustiveSearch>> searches(prefixes.size());
  ParallelChunks(prefixes.size(), 1, [&](size_t i, size_t, size_t) {
    auto search = std::make_unique<ExhaustiveSearch>(dag, model, sizes, engines,
                                                     config.enable_merging);
    search->Seed(prefixes[i].jobs, prefixes[i].idx);
    search->set_shared_bound(&bound);
    search->Search();
    searches[i] = std::move(search);
  });
  const ExhaustiveSearch* best = nullptr;
  for (const auto& search : searches) {
    if (search->found() &&
        (best == nullptr || search->best_cost() < best->best_cost())) {
      best = search.get();
    }
  }
  if (best == nullptr) {
    return FailedPreconditionError(
        "no engine combination can execute this workflow");
  }
  Partitioning out;
  out.total_cost = best->best_cost();
  out.used_exhaustive = true;
  out.jobs = best->best_jobs();
  return out;
}

// ---- Built-in strategies ----

class DpStrategy : public PartitionStrategy {
 public:
  std::string_view name() const override { return "dp"; }
  StatusOr<Partitioning> Partition(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PlannerConfig& config) const override {
    auto out = PartitionDpMulti(dag, model, sizes, config,
                                std::max(1, config.dp_linear_orders));
    if (out.ok()) {
      out->strategy = name();
    }
    return out;
  }
};

class DpMultiOrderStrategy : public PartitionStrategy {
 public:
  std::string_view name() const override { return "dp-multi"; }
  StatusOr<Partitioning> Partition(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PlannerConfig& config) const override {
    // Selecting the multi-order strategy with the orders knob untouched
    // still explores a meaningful spread.
    int orders = config.dp_linear_orders > 1 ? config.dp_linear_orders : 8;
    auto out = PartitionDpMulti(dag, model, sizes, config, orders);
    if (out.ok()) {
      out->strategy = name();
    }
    return out;
  }
};

class ExhaustiveStrategy : public PartitionStrategy {
 public:
  std::string_view name() const override { return "exhaustive"; }
  StatusOr<Partitioning> Partition(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PlannerConfig& config) const override {
    auto out = RunExhaustive(dag, model, sizes, config);
    if (out.ok()) {
      out->strategy = name();
    }
    return out;
  }
};

class AutoStrategy : public PartitionStrategy {
 public:
  std::string_view name() const override { return "auto"; }
  StatusOr<Partitioning> Partition(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PlannerConfig& config) const override {
    const int ops = static_cast<int>(OperatorOrder(dag).size());
    const char* target =
        ops <= config.exhaustive_threshold
            ? "exhaustive"
            : (config.dp_linear_orders > 1 ? "dp-multi" : "dp");
    const PartitionStrategy* impl =
        PartitionStrategyRegistry::Global().Find(target);
    if (impl == nullptr) {
      return InternalError(std::string("auto strategy target '") + target +
                           "' not registered");
    }
    return impl->Partition(dag, model, sizes, config);
  }
};

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

const char* PartitionStrategyKindName(PartitionStrategyKind kind) {
  switch (kind) {
    case PartitionStrategyKind::kAuto:
      return "auto";
    case PartitionStrategyKind::kDp:
      return "dp";
    case PartitionStrategyKind::kExhaustive:
      return "exhaustive";
    case PartitionStrategyKind::kDpMultiOrder:
      return "dp-multi";
  }
  return "auto";
}

std::optional<PartitionStrategyKind> PartitionStrategyKindFromName(
    std::string_view name) {
  if (name == "auto") {
    return PartitionStrategyKind::kAuto;
  }
  if (name == "dp") {
    return PartitionStrategyKind::kDp;
  }
  if (name == "exhaustive") {
    return PartitionStrategyKind::kExhaustive;
  }
  if (name == "dp-multi" || name == "dp_multi") {
    return PartitionStrategyKind::kDpMultiOrder;
  }
  return std::nullopt;
}

PartitionStrategyRegistry::PartitionStrategyRegistry() {
  strategies_.emplace_back("auto", std::make_unique<AutoStrategy>());
  strategies_.emplace_back("dp", std::make_unique<DpStrategy>());
  strategies_.emplace_back("exhaustive", std::make_unique<ExhaustiveStrategy>());
  strategies_.emplace_back("dp-multi", std::make_unique<DpMultiOrderStrategy>());
}

PartitionStrategyRegistry& PartitionStrategyRegistry::Global() {
  static PartitionStrategyRegistry* registry = new PartitionStrategyRegistry();
  return *registry;
}

void PartitionStrategyRegistry::Register(
    std::string name, std::unique_ptr<PartitionStrategy> strategy) {
  std::lock_guard lock(RegistryMutex());
  strategies_.emplace_back(std::move(name), std::move(strategy));
}

const PartitionStrategy* PartitionStrategyRegistry::Find(
    std::string_view name) const {
  std::lock_guard lock(RegistryMutex());
  // Back-to-front: the latest registration under a name wins, so user
  // strategies can shadow built-ins without unregistering them.
  for (auto it = strategies_.rbegin(); it != strategies_.rend(); ++it) {
    if (it->first == name) {
      return it->second.get();
    }
  }
  return nullptr;
}

std::vector<std::string> PartitionStrategyRegistry::Names() const {
  std::lock_guard lock(RegistryMutex());
  std::vector<std::string> out;
  for (const auto& [name, strategy] : strategies_) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  }
  return out;
}

StatusOr<Partitioning> PartitionWorkflow(const Dag& dag, const CostModel& model,
                                         const std::vector<Bytes>& sizes,
                                         const PlannerConfig& config) {
  const std::string name = !config.custom_strategy.empty()
                               ? config.custom_strategy
                               : PartitionStrategyKindName(config.strategy);
  const PartitionStrategy* strategy =
      PartitionStrategyRegistry::Global().Find(name);
  if (strategy == nullptr) {
    return InvalidArgumentError("unknown partition strategy '" + name + "'");
  }
  auto out = strategy->Partition(dag, model, sizes, config);
  if (out.ok() && out->strategy.empty()) {
    out->strategy = std::string(strategy->name());
  }
  return out;
}

StatusOr<Partitioning> PartitionRemainder(const Dag& dag, const CostModel& model,
                                          const std::vector<Bytes>& sizes,
                                          const PlannerConfig& config,
                                          const std::vector<int>& ops) {
  std::unordered_set<int> remaining(ops.begin(), ops.end());
  std::vector<int> order;
  for (int id : OperatorOrder(dag)) {
    if (remaining.count(id)) {
      order.push_back(id);
    }
  }
  if (order.empty()) {
    return InvalidArgumentError("no remaining operators to re-plan");
  }
  // Always the DP: re-planning happens on the execution critical path, where
  // exhaustive search would cost more than the mispredictions it fixes.
  auto out = PartitionDpOnOrder(dag, model, sizes, config, order);
  if (out.ok()) {
    out->strategy = "dp";
  }
  return out;
}

}  // namespace musketeer
