#include "src/scheduler/history.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/base/json.h"

namespace musketeer {

HistoryStore::HistoryStore(const HistoryStore& other) {
  std::shared_lock lock(other.mu_);
  data_ = other.data_;
}

HistoryStore& HistoryStore::operator=(const HistoryStore& other) {
  if (this == &other) {
    return *this;
  }
  // Consistent ordering by address avoids deadlock if two threads assign the
  // same pair of stores in opposite directions.
  if (this < &other) {
    std::unique_lock lhs(mu_);
    std::shared_lock rhs(other.mu_);
    data_ = other.data_;
  } else {
    std::shared_lock rhs(other.mu_);
    std::unique_lock lhs(mu_);
    data_ = other.data_;
  }
  return *this;
}

void HistoryStore::Record(const std::string& workflow, const std::string& relation,
                          Bytes bytes) {
  std::unique_lock lock(mu_);
  auto& per_wf = data_[workflow];
  auto it = per_wf.find(relation);
  if (it != per_wf.end()) {
    it->second.bytes = bytes;
    ++it->second.samples;
    return;
  }
  Entry e;
  e.bytes = bytes;
  e.order = static_cast<int>(per_wf.size());
  per_wf.emplace(relation, e);
}

std::optional<Bytes> HistoryStore::Lookup(const std::string& workflow,
                                          const std::string& relation) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  if (wf == data_.end()) {
    return std::nullopt;
  }
  auto it = wf->second.find(relation);
  if (it == wf->second.end()) {
    return std::nullopt;
  }
  return it->second.bytes;
}

int HistoryStore::SamplesFor(const std::string& workflow,
                             const std::string& relation) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  if (wf == data_.end()) {
    return 0;
  }
  auto it = wf->second.find(relation);
  return it == wf->second.end() ? 0 : it->second.samples;
}

void HistoryStore::MergeFrom(const HistoryStore& other) {
  if (this == &other) {
    return;
  }
  // Same address-ordered locking discipline as operator=.
  std::unique_lock<std::shared_mutex> lhs(mu_, std::defer_lock);
  std::shared_lock<std::shared_mutex> rhs(other.mu_, std::defer_lock);
  if (this < &other) {
    lhs.lock();
    rhs.lock();
  } else {
    rhs.lock();
    lhs.lock();
  }
  for (const auto& [workflow, relations] : other.data_) {
    auto& per_wf = data_[workflow];
    // Deterministic insertion order for fresh entries: the incoming store's
    // own ordering, not unordered_map iteration order.
    std::vector<std::pair<std::string, Entry>> ordered(relations.begin(),
                                                       relations.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                return a.second.order < b.second.order;
              });
    for (const auto& [relation, incoming] : ordered) {
      auto it = per_wf.find(relation);
      if (it == per_wf.end()) {
        Entry e = incoming;
        e.order = static_cast<int>(per_wf.size());
        per_wf.emplace(relation, e);
        continue;
      }
      // Keep the better-evidenced size (tie -> existing); both sides'
      // observations are real, so the counts add up.
      if (incoming.samples > it->second.samples) {
        it->second.bytes = incoming.bytes;
      }
      it->second.samples += incoming.samples;
    }
  }
}

int HistoryStore::EntriesFor(const std::string& workflow) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  return wf == data_.end() ? 0 : static_cast<int>(wf->second.size());
}

void HistoryStore::Clear() {
  std::unique_lock lock(mu_);
  data_.clear();
}

std::string HistoryStore::ToJson() const {
  JsonValue doc;
  doc.kind = JsonValue::Kind::kObject;
  std::shared_lock lock(mu_);
  // Workflows sorted by id, relations in insertion order, so the file is
  // deterministic for a given store and diffs cleanly across runs.
  std::map<std::string,
           const std::unordered_map<std::string, Entry>*> sorted;
  for (const auto& [workflow, relations] : data_) {
    sorted[workflow] = &relations;
  }
  for (const auto& [workflow, relations] : sorted) {
    std::vector<std::pair<std::string, Entry>> ordered(relations->begin(),
                                                       relations->end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                return a.second.order < b.second.order;
              });
    JsonValue list;
    list.kind = JsonValue::Kind::kArray;
    for (const auto& [relation, entry] : ordered) {
      JsonValue rec;
      rec.kind = JsonValue::Kind::kObject;
      JsonValue name;
      name.kind = JsonValue::Kind::kString;
      name.string_value = relation;
      JsonValue bytes;
      bytes.kind = JsonValue::Kind::kNumber;
      bytes.number_value = entry.bytes;
      JsonValue samples;
      samples.kind = JsonValue::Kind::kNumber;
      samples.number_value = entry.samples;
      rec.object.emplace_back("relation", std::move(name));
      rec.object.emplace_back("bytes", std::move(bytes));
      rec.object.emplace_back("samples", std::move(samples));
      list.array.push_back(std::move(rec));
    }
    doc.object.emplace_back(workflow, std::move(list));
  }
  return doc.Dump();
}

Status HistoryStore::FromJson(const std::string& text) {
  MUSKETEER_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  if (!doc.is_object()) {
    return InvalidArgumentError("history document must be a JSON object");
  }
  decltype(data_) parsed;
  for (const auto& [workflow, list] : doc.object) {
    if (!list.is_array()) {
      return InvalidArgumentError("history for workflow '" + workflow +
                                  "' must be an array");
    }
    auto& per_wf = parsed[workflow];
    for (const JsonValue& rec : list.array) {
      const JsonValue* relation = rec.Find("relation");
      const JsonValue* bytes = rec.Find("bytes");
      if (relation == nullptr || !relation->is_string() || bytes == nullptr ||
          !bytes->is_number()) {
        return InvalidArgumentError(
            "history record needs string 'relation' and numeric 'bytes'");
      }
      Entry e;
      e.bytes = bytes->number_value;
      e.order = static_cast<int>(per_wf.size());
      const JsonValue* samples = rec.Find("samples");
      if (samples != nullptr && samples->is_number() &&
          samples->number_value >= 1) {
        e.samples = static_cast<int>(samples->number_value);
      }
      per_wf[relation->string_value] = e;
    }
  }
  std::unique_lock lock(mu_);
  data_ = std::move(parsed);
  return OkStatus();
}

Status HistoryStore::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open history file '" + path + "' for write");
  }
  out << ToJson() << "\n";
  out.close();
  if (!out) {
    return InternalError("error writing history file '" + path + "'");
  }
  return OkStatus();
}

Status HistoryStore::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return OkStatus();  // no file yet: start with an empty history
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return InternalError("error reading history file '" + path + "'");
  }
  // Parse into a scratch store, then merge: loading must never clobber
  // observations already in memory (the old behavior silently dropped a warm
  // store's entries whenever a file was re-loaded).
  HistoryStore parsed;
  MUSKETEER_RETURN_IF_ERROR(parsed.FromJson(text.str()));
  MergeFrom(parsed);
  return OkStatus();
}

HistoryStore HistoryStore::WithPartialKnowledge(double fraction) const {
  HistoryStore out;
  std::shared_lock lock(mu_);
  for (const auto& [workflow, relations] : data_) {
    int total = static_cast<int>(relations.size());
    for (const auto& [relation, entry] : relations) {
      if (entry.order < fraction * total) {
        out.Record(workflow, relation, entry.bytes);
      }
    }
  }
  return out;
}

}  // namespace musketeer
