#include "src/scheduler/history.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/base/json.h"

namespace musketeer {

HistoryStore::HistoryStore(const HistoryStore& other) {
  std::shared_lock lock(other.mu_);
  data_ = other.data_;
}

HistoryStore& HistoryStore::operator=(const HistoryStore& other) {
  if (this == &other) {
    return *this;
  }
  // Consistent ordering by address avoids deadlock if two threads assign the
  // same pair of stores in opposite directions.
  if (this < &other) {
    std::unique_lock lhs(mu_);
    std::shared_lock rhs(other.mu_);
    data_ = other.data_;
  } else {
    std::shared_lock rhs(other.mu_);
    std::unique_lock lhs(mu_);
    data_ = other.data_;
  }
  return *this;
}

void HistoryStore::Record(const std::string& workflow, const std::string& relation,
                          Bytes bytes) {
  std::unique_lock lock(mu_);
  auto& per_wf = data_[workflow];
  auto it = per_wf.find(relation);
  if (it != per_wf.end()) {
    it->second.bytes = bytes;
    return;
  }
  Entry e;
  e.bytes = bytes;
  e.order = static_cast<int>(per_wf.size());
  per_wf.emplace(relation, e);
}

std::optional<Bytes> HistoryStore::Lookup(const std::string& workflow,
                                          const std::string& relation) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  if (wf == data_.end()) {
    return std::nullopt;
  }
  auto it = wf->second.find(relation);
  if (it == wf->second.end()) {
    return std::nullopt;
  }
  return it->second.bytes;
}

int HistoryStore::EntriesFor(const std::string& workflow) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  return wf == data_.end() ? 0 : static_cast<int>(wf->second.size());
}

void HistoryStore::Clear() {
  std::unique_lock lock(mu_);
  data_.clear();
}

std::string HistoryStore::ToJson() const {
  JsonValue doc;
  doc.kind = JsonValue::Kind::kObject;
  std::shared_lock lock(mu_);
  // Workflows sorted by id, relations in insertion order, so the file is
  // deterministic for a given store and diffs cleanly across runs.
  std::map<std::string,
           const std::unordered_map<std::string, Entry>*> sorted;
  for (const auto& [workflow, relations] : data_) {
    sorted[workflow] = &relations;
  }
  for (const auto& [workflow, relations] : sorted) {
    std::vector<std::pair<std::string, Entry>> ordered(relations->begin(),
                                                       relations->end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                return a.second.order < b.second.order;
              });
    JsonValue list;
    list.kind = JsonValue::Kind::kArray;
    for (const auto& [relation, entry] : ordered) {
      JsonValue rec;
      rec.kind = JsonValue::Kind::kObject;
      JsonValue name;
      name.kind = JsonValue::Kind::kString;
      name.string_value = relation;
      JsonValue bytes;
      bytes.kind = JsonValue::Kind::kNumber;
      bytes.number_value = entry.bytes;
      rec.object.emplace_back("relation", std::move(name));
      rec.object.emplace_back("bytes", std::move(bytes));
      list.array.push_back(std::move(rec));
    }
    doc.object.emplace_back(workflow, std::move(list));
  }
  return doc.Dump();
}

Status HistoryStore::FromJson(const std::string& text) {
  MUSKETEER_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  if (!doc.is_object()) {
    return InvalidArgumentError("history document must be a JSON object");
  }
  decltype(data_) parsed;
  for (const auto& [workflow, list] : doc.object) {
    if (!list.is_array()) {
      return InvalidArgumentError("history for workflow '" + workflow +
                                  "' must be an array");
    }
    auto& per_wf = parsed[workflow];
    for (const JsonValue& rec : list.array) {
      const JsonValue* relation = rec.Find("relation");
      const JsonValue* bytes = rec.Find("bytes");
      if (relation == nullptr || !relation->is_string() || bytes == nullptr ||
          !bytes->is_number()) {
        return InvalidArgumentError(
            "history record needs string 'relation' and numeric 'bytes'");
      }
      Entry e;
      e.bytes = bytes->number_value;
      e.order = static_cast<int>(per_wf.size());
      per_wf[relation->string_value] = e;
    }
  }
  std::unique_lock lock(mu_);
  data_ = std::move(parsed);
  return OkStatus();
}

Status HistoryStore::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open history file '" + path + "' for write");
  }
  out << ToJson() << "\n";
  out.close();
  if (!out) {
    return InternalError("error writing history file '" + path + "'");
  }
  return OkStatus();
}

Status HistoryStore::LoadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return OkStatus();  // no file yet: start with an empty history
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return InternalError("error reading history file '" + path + "'");
  }
  return FromJson(text.str());
}

HistoryStore HistoryStore::WithPartialKnowledge(double fraction) const {
  HistoryStore out;
  std::shared_lock lock(mu_);
  for (const auto& [workflow, relations] : data_) {
    int total = static_cast<int>(relations.size());
    for (const auto& [relation, entry] : relations) {
      if (entry.order < fraction * total) {
        out.Record(workflow, relation, entry.bytes);
      }
    }
  }
  return out;
}

}  // namespace musketeer
