#include "src/scheduler/history.h"

#include <mutex>

namespace musketeer {

HistoryStore::HistoryStore(const HistoryStore& other) {
  std::shared_lock lock(other.mu_);
  data_ = other.data_;
}

HistoryStore& HistoryStore::operator=(const HistoryStore& other) {
  if (this == &other) {
    return *this;
  }
  // Consistent ordering by address avoids deadlock if two threads assign the
  // same pair of stores in opposite directions.
  if (this < &other) {
    std::unique_lock lhs(mu_);
    std::shared_lock rhs(other.mu_);
    data_ = other.data_;
  } else {
    std::shared_lock rhs(other.mu_);
    std::unique_lock lhs(mu_);
    data_ = other.data_;
  }
  return *this;
}

void HistoryStore::Record(const std::string& workflow, const std::string& relation,
                          Bytes bytes) {
  std::unique_lock lock(mu_);
  auto& per_wf = data_[workflow];
  auto it = per_wf.find(relation);
  if (it != per_wf.end()) {
    it->second.bytes = bytes;
    return;
  }
  Entry e;
  e.bytes = bytes;
  e.order = static_cast<int>(per_wf.size());
  per_wf.emplace(relation, e);
}

std::optional<Bytes> HistoryStore::Lookup(const std::string& workflow,
                                          const std::string& relation) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  if (wf == data_.end()) {
    return std::nullopt;
  }
  auto it = wf->second.find(relation);
  if (it == wf->second.end()) {
    return std::nullopt;
  }
  return it->second.bytes;
}

int HistoryStore::EntriesFor(const std::string& workflow) const {
  std::shared_lock lock(mu_);
  auto wf = data_.find(workflow);
  return wf == data_.end() ? 0 : static_cast<int>(wf->second.size());
}

void HistoryStore::Clear() {
  std::unique_lock lock(mu_);
  data_.clear();
}

HistoryStore HistoryStore::WithPartialKnowledge(double fraction) const {
  HistoryStore out;
  std::shared_lock lock(mu_);
  for (const auto& [workflow, relations] : data_) {
    int total = static_cast<int>(relations.size());
    for (const auto& [relation, entry] : relations) {
      if (entry.order < fraction * total) {
        out.Record(workflow, relation, entry.bytes);
      }
    }
  }
  return out;
}

}  // namespace musketeer
