#include "src/scheduler/history.h"

namespace musketeer {

void HistoryStore::Record(const std::string& workflow, const std::string& relation,
                          Bytes bytes) {
  auto& per_wf = data_[workflow];
  auto it = per_wf.find(relation);
  if (it != per_wf.end()) {
    it->second.bytes = bytes;
    return;
  }
  Entry e;
  e.bytes = bytes;
  e.order = static_cast<int>(per_wf.size());
  per_wf.emplace(relation, e);
}

std::optional<Bytes> HistoryStore::Lookup(const std::string& workflow,
                                          const std::string& relation) const {
  auto wf = data_.find(workflow);
  if (wf == data_.end()) {
    return std::nullopt;
  }
  auto it = wf->second.find(relation);
  if (it == wf->second.end()) {
    return std::nullopt;
  }
  return it->second.bytes;
}

int HistoryStore::EntriesFor(const std::string& workflow) const {
  auto wf = data_.find(workflow);
  return wf == data_.end() ? 0 : static_cast<int>(wf->second.size());
}

void HistoryStore::Clear() { data_.clear(); }

HistoryStore HistoryStore::WithPartialKnowledge(double fraction) const {
  HistoryStore out;
  for (const auto& [workflow, relations] : data_) {
    int total = static_cast<int>(relations.size());
    for (const auto& [relation, entry] : relations) {
      if (entry.order < fraction * total) {
        out.Record(workflow, relation, entry.bytes);
      }
    }
  }
  return out;
}

}  // namespace musketeer
