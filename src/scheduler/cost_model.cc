#include "src/scheduler/cost_model.h"

#include <algorithm>

#include "src/backends/pricing.h"
#include "src/opt/idiom.h"

namespace musketeer {

CostModel::CostModel(ClusterConfig cluster, const HistoryStore* history,
                     std::string workflow_id, bool conservative_merging,
                     const RuntimeCalibration* calibration)
    : cluster_(std::move(cluster)),
      history_(history),
      workflow_id_(std::move(workflow_id)),
      conservative_merging_(conservative_merging),
      calibration_(calibration) {}

Bytes CostModel::PredictNodeSize(const Dag& /*dag*/, const OperatorNode& node,
                                 const std::vector<Bytes>& in_bytes) const {
  // Observed history beats any bound.
  if (history_ != nullptr) {
    auto h = history_->Lookup(workflow_id_, node.output);
    if (h.has_value()) {
      return *h;
    }
  }
  Bytes total_in = 0;
  for (Bytes b : in_bytes) {
    total_in += b;
  }
  switch (OpSizeBehavior(node.kind)) {
    case SizeBehavior::kSelective:
    case SizeBehavior::kPreserving:
      // Conservative upper bound: no more data than came in.
      return in_bytes.empty() ? 0 : in_bytes[0];
    case SizeBehavior::kAdditive:
      return total_in;
    case SizeBehavior::kConstant:
      return 128.0;
    case SizeBehavior::kGenerative:
      // JOIN & friends: unknown bound; be conservative until history says
      // otherwise ("Musketeer applies conservative data size bounds", §5.2).
      return kConservativeGenerativeFactor * total_in;
  }
  return total_in;
}

StatusOr<std::vector<Bytes>> CostModel::PredictSizes(
    const Dag& dag, const RelationSizes& base_sizes) const {
  std::vector<Bytes> sizes(dag.num_nodes(), 0);
  for (const OperatorNode& node : dag.nodes()) {
    if (node.kind == OpKind::kInput) {
      const std::string& rel = std::get<InputParams>(node.params).relation;
      auto it = base_sizes.find(rel);
      if (it != base_sizes.end()) {
        sizes[node.id] = it->second;
        continue;
      }
      if (history_ != nullptr) {
        auto h = history_->Lookup(workflow_id_, rel);
        if (h.has_value()) {
          sizes[node.id] = *h;
          continue;
        }
      }
      return NotFoundError("no size information for base relation '" + rel + "'");
    }
    if (node.kind == OpKind::kWhile) {
      const auto& wp = std::get<WhileParams>(node.params);
      // Predict one loop trip (steady-state approximation): the body sees
      // the loop seeds plus the loop-invariant extra inputs.
      RelationSizes body_base = base_sizes;
      for (size_t i = 0; i < wp.bindings.size(); ++i) {
        body_base[wp.bindings[i].loop_input] = sizes[node.inputs[i]];
      }
      for (size_t i = wp.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = sizes[node.inputs[i]];
      }
      MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> body_sizes,
                                 PredictSizes(*wp.body, body_base));
      sizes[node.id] = body_sizes[wp.body->ProducerOf(wp.result)];
      continue;
    }
    std::vector<Bytes> in;
    for (int i : node.inputs) {
      in.push_back(sizes[i]);
    }
    sizes[node.id] = PredictNodeSize(dag, node, in);
  }
  return sizes;
}

double CostModel::JobCost(const Dag& dag, const std::vector<int>& ops,
                          EngineKind engine,
                          const std::vector<Bytes>& sizes,
                          const ShardLocality* locality) const {
  const Backend& backend = BackendFor(engine);
  if (!backend.CanRunAsSingleJob(dag, ops)) {
    return kInfiniteCost;
  }
  std::vector<int> sorted = ops;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<int, bool> in_set;
  for (int id : sorted) {
    in_set[id] = true;
  }

  // Conservative first-run merge gating (§5.2): a generative operator with
  // no historical output size ends its job — its consumers cannot share it.
  if (conservative_merging_) {
    for (int id : sorted) {
      const OperatorNode& node = dag.node(id);
      if (node.kind != OpKind::kWhile &&
          OpSizeBehavior(node.kind) == SizeBehavior::kGenerative) {
        bool known = history_ != nullptr &&
                     history_->Lookup(workflow_id_, node.output).has_value();
        if (!known) {
          for (int c : dag.ConsumersOf(id)) {
            if (in_set.count(c)) {
              return kInfiniteCost;
            }
          }
        }
      }
    }
  }

  JobShape shape;
  shape.process_efficiency = backend.generated_process_efficiency();

  // PULL: externally-produced inputs (deduplicated per producer). With a
  // locality context, inputs the candidate shard does not own must first be
  // fetched cross-shard — charged below at the measured transfer rate.
  Bytes locality_remote_bytes = 0;
  std::unordered_map<int, bool> pulled;
  for (int id : sorted) {
    for (int p : dag.node(id).inputs) {
      if (!in_set.count(p) && !pulled.count(p)) {
        pulled[p] = true;
        shape.pull_bytes += sizes[p];
        if (locality != nullptr && locality->map != nullptr &&
            locality->shard >= 0 &&
            locality->map->OwnerOf(dag.node(p).output) != locality->shard) {
          locality_remote_bytes += sizes[p];
        }
      }
    }
  }
  if (RatesFor(engine).load_mbps > 0) {
    shape.load_bytes = shape.pull_bytes;
  }

  // PUSH: outputs leaving the job.
  for (int id : sorted) {
    std::vector<int> consumers = dag.ConsumersOf(id);
    bool external = consumers.empty();
    for (int c : consumers) {
      external = external || !in_set.count(c);
    }
    if (external) {
      shape.push_bytes += sizes[id];
    }
  }

  bool spark_miss = engine == EngineKind::kSpark;
  bool miss_charged = false;

  // Per-operator processing.
  for (int id : sorted) {
    const OperatorNode& node = dag.node(id);
    if (node.kind == OpKind::kWhile) {
      const auto& wp = std::get<WhileParams>(node.params);
      bool idiom = IsGraphIdiom(dag, id);
      WhileExec mode = WhileModeFor(engine, idiom);
      bool graph_path = mode == WhileExec::kVertexRuntime;

      RelationSizes body_base;
      for (size_t i = 0; i < wp.bindings.size(); ++i) {
        body_base[wp.bindings[i].loop_input] = sizes[node.inputs[i]];
      }
      for (size_t i = wp.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = sizes[node.inputs[i]];
      }
      auto body_sizes_or = PredictSizes(*wp.body, body_base);
      if (!body_sizes_or.ok()) {
        return kInfiniteCost;
      }
      const std::vector<Bytes>& body_sizes = *body_sizes_or;

      int body_shuffles = 0;
      Bytes materialized = 0;
      bool charged_scan = false;
      bool charged_gather = false;
      for (const OperatorNode& bn : wp.body->nodes()) {
        if (bn.kind == OpKind::kInput) {
          continue;
        }
        Bytes in_bytes = 0;
        for (int bi : bn.inputs) {
          in_bytes += body_sizes[bi];
        }
        if (graph_path) {
          // Vertex runtime: one graph-rate edge scan plus gather
          // communication per superstep (mirrors ExecuteJob's model).
          if (bn.kind == OpKind::kJoin && !charged_scan) {
            charged_scan = true;
            shape.ops.push_back(
                PricedOp{.in_bytes = in_bytes * static_cast<double>(wp.iterations),
                         .shuffle = false,
                         .charge_process = true,
                         .graph_path = true});
          } else if ((bn.kind == OpKind::kGroupBy || bn.kind == OpKind::kAgg) &&
                     !charged_gather) {
            charged_gather = true;
            shape.ops.push_back(
                PricedOp{.in_bytes = in_bytes * static_cast<double>(wp.iterations),
                         .shuffle = true,
                         .charge_process = false,
                         .graph_path = true});
          }
          continue;
        }
        PricedOp priced;
        priced.in_bytes = in_bytes * static_cast<double>(wp.iterations);
        priced.shuffle = IsShuffleOp(bn.kind);
        priced.charge_process = !IsRowwiseOp(bn.kind);
        shape.ops.push_back(priced);
        if (IsShuffleOp(bn.kind)) {
          ++body_shuffles;
          materialized += body_sizes[bn.id] * static_cast<double>(wp.iterations);
        }
      }
      switch (mode) {
        case WhileExec::kPerIterationJobs:
          shape.job_count += std::max(1, body_shuffles) *
                             static_cast<int>(wp.iterations) - 1;
          shape.pull_bytes += materialized;
          shape.push_bytes += materialized;
          break;
        default:
          shape.supersteps += static_cast<int>(wp.iterations);
          break;
      }
      continue;
    }

    Bytes in_bytes = 0;
    for (int i : node.inputs) {
      in_bytes += sizes[i];
    }
    PricedOp priced;
    priced.in_bytes = in_bytes;
    priced.shuffle = IsShuffleOp(node.kind);
    priced.charge_process = !IsRowwiseOp(node.kind);
    shape.ops.push_back(priced);

    // Spark type-inference miss (mirrors the executor): a join feeding a
    // differently-keyed aggregation — possibly through row-wise reshaping —
    // costs an extra pass over the join output.
    if (spark_miss && !miss_charged && node.kind == OpKind::kJoin) {
      const auto& jp = std::get<JoinParams>(node.params);
      int cur = id;
      bool reshaped = false;
      while (true) {
        std::vector<int> consumers = dag.ConsumersOf(cur);
        if (consumers.size() != 1 || !in_set.count(consumers[0])) {
          break;
        }
        const OperatorNode& consumer = dag.node(consumers[0]);
        if (IsRowwiseOp(consumer.kind)) {
          reshaped = true;
          cur = consumer.id;
          continue;
        }
        bool miss = false;
        if (consumer.kind == OpKind::kGroupBy) {
          const auto& gp = std::get<GroupByParams>(consumer.params);
          miss = reshaped || gp.group_columns.size() != 1 ||
                 gp.group_columns[0] != jp.left_key;
        } else if (consumer.kind == OpKind::kAgg) {
          miss = true;
        }
        if (miss) {
          miss_charged = true;
          shape.ops.push_back(PricedOp{.in_bytes = sizes[id],
                                       .shuffle = false,
                                       .charge_process = true});
        }
        break;
      }
    }
  }

  if (engine == EngineKind::kGraphChi &&
      shape.pull_bytes < kGraphChiInMemoryBytes) {
    shape.process_efficiency *= kGraphChiInMemoryBoost;
  }
  double cost = PriceJob(engine, cluster_, shape);
  if (calibration_ != nullptr && calibration_->has_observations) {
    cost *= calibration_->TimeScale(EngineKindName(engine));
  }
  // Locality term: transfer seconds for the inputs this shard must fetch,
  // at the measured cross-shard rate. Added after calibration — the rate is
  // already a wall-clock measurement, not a sim-time constant.
  if (locality_remote_bytes > 0 && locality != nullptr) {
    const double rate = locality->remote_mbps > 0 ? locality->remote_mbps : 1.0;
    cost += locality_remote_bytes / MBps(rate);
  }
  return cost;
}

double BarrierHandoffSeconds(EngineKind producer, EngineKind consumer,
                             const ClusterConfig& cluster, Bytes bytes) {
  if (bytes <= 0) {
    return 0;
  }
  double seconds = bytes / PushBandwidth(producer, cluster) +
                   bytes / PullBandwidth(consumer, cluster);
  const double load = LoadBandwidth(consumer, cluster);
  if (load > 0) {
    seconds += bytes / load;
  }
  return seconds;
}

double ChannelHandoffSeconds(Bytes bytes) {
  // Memory-bandwidth-class transfer plus a fixed charge for the channel and
  // the consumer-side reassembly. Deliberately coarse: the decision only has
  // to order "touches storage twice" against "stays in memory", and the
  // setup charge keeps tiny edges on the barrier path where the pipelining
  // thread machinery is not worth it.
  constexpr double kChannelMBps = 2000.0;
  constexpr double kChannelSetupSeconds = 0.05;
  if (bytes <= 0) {
    return 0;
  }
  return kChannelSetupSeconds + bytes / MBps(kChannelMBps);
}

}  // namespace musketeer
