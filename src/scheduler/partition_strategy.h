// Pluggable partitioning strategies (§5) behind one planner configuration.
//
// The partitioner grew three free functions (PartitionDp / PartitionExhaustive
// / PartitionDag) steered by force_* booleans; at production scale the planner
// needs to be selectable, parameterized and extensible without touching
// src/core/. This header replaces that surface:
//
//   * PartitionStrategyKind — the built-in strategies: kAuto (exhaustive up
//     to a size threshold, DP above it — the paper's switch), kDp (§5.1.2
//     single linear order), kExhaustive (§5.1.1 optimal search), and
//     kDpMultiOrder (§8/Fig. 16: DP over several seeded random topological
//     orders, cheapest partitioning wins).
//   * PlannerConfig — every knob the planner takes, including the online
//     re-planning policy Execute() applies mid-run.
//   * PartitionStrategy — the strategy interface. Implementations register
//     with PartitionStrategyRegistry under a name; new strategies (beam
//     search, ILP, ...) slot in by registering, with no core changes.
//   * PartitionWorkflow — the single entry point Musketeer::Plan calls.
//
// The old free functions live on in partitioner.h as [[deprecated]] shims
// for this transition only.

#ifndef MUSKETEER_SRC_SCHEDULER_PARTITION_STRATEGY_H_
#define MUSKETEER_SRC_SCHEDULER_PARTITION_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/scheduler/cost_model.h"

namespace musketeer {

struct JobAssignment {
  std::vector<int> ops;  // node ids in the workflow DAG
  EngineKind engine = EngineKind::kHadoop;
  double cost = 0;
};

struct Partitioning {
  std::vector<JobAssignment> jobs;  // in execution (topological) order
  double total_cost = 0;
  bool used_exhaustive = false;
  // Registry name of the strategy that produced this partitioning
  // ("auto" resolves to the concrete strategy it dispatched to).
  std::string strategy;
};

enum class PartitionStrategyKind {
  kAuto,         // exhaustive ≤ threshold, DP above (the paper's prototype)
  kDp,           // §5.1.2 DP over the front-end's linear order
  kExhaustive,   // §5.1.1 optimal search, exponential time
  kDpMultiOrder, // §8/Fig. 16 DP over several seeded random orders
};

// Canonical registry names: "auto", "dp", "exhaustive", "dp-multi".
const char* PartitionStrategyKindName(PartitionStrategyKind kind);
std::optional<PartitionStrategyKind> PartitionStrategyKindFromName(
    std::string_view name);

// One coherent planner configuration, consumed by Musketeer::Plan.
struct PlannerConfig {
  PartitionStrategyKind strategy = PartitionStrategyKind::kAuto;
  // When non-empty, resolved against the registry instead of `strategy` —
  // the extension point for strategies registered outside this file.
  std::string custom_strategy;

  // Engines considered; empty = all seven (automatic mapping, §5.2).
  std::vector<EngineKind> engines;
  // §4.3.2 / Fig. 12 ablation: with merging disabled every operator becomes
  // its own job.
  bool enable_merging = true;
  // kAuto switches from exhaustive to DP above this many operators (the
  // paper's prototype switches at ~18; exhaustive cost grows sharply past
  // 13, Fig. 13).
  int exhaustive_threshold = 12;
  // Orders explored by kDpMultiOrder; order i is the seeded shuffle
  // dp_order_seed + i, so the whole multi-order search replays bit-identically
  // from the seed. ≤1 under kDpMultiOrder still explores a default of 8.
  int dp_linear_orders = 1;
  uint64_t dp_order_seed = 0x9e3779b9u;
  // Longest operator run the DP may merge into one job; 0 = auto (unbounded
  // on small DAGs, capped on 100–1000-op DAGs where the O(N²·cap) segment
  // scan must stay interactive). Merging hundreds of operators into one job
  // is never cost-optimal here, so the cap trades nothing measurable.
  int dp_segment_cap = 0;

  // ---- Online re-planning (Execute(), DESIGN.md "Planner at scale") ----
  // When > 0: after each job whose measured wall_seconds disagree with the
  // runtime-history prediction by more than this ratio (max of over/under
  // estimate, e.g. 2.0 = off by 2x), re-partition the *remaining* DAG suffix
  // with the freshly recalibrated cost model. 0 disables re-planning.
  double replan_threshold = 0;
  // Upper bound on mid-run re-plans per execution.
  int max_replans = 1;
};

// Strategy interface. Implementations must be stateless and thread-safe:
// one registered instance serves concurrent plans.
class PartitionStrategy {
 public:
  virtual ~PartitionStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual StatusOr<Partitioning> Partition(const Dag& dag,
                                           const CostModel& model,
                                           const std::vector<Bytes>& sizes,
                                           const PlannerConfig& config) const = 0;
};

// Name -> strategy registry. Built-ins self-register; user strategies add
// themselves via Register (last registration under a name wins).
class PartitionStrategyRegistry {
 public:
  static PartitionStrategyRegistry& Global();

  void Register(std::string name, std::unique_ptr<PartitionStrategy> strategy);
  // nullptr when unknown.
  const PartitionStrategy* Find(std::string_view name) const;
  std::vector<std::string> Names() const;

 private:
  PartitionStrategyRegistry();
  std::vector<std::pair<std::string, std::unique_ptr<PartitionStrategy>>>
      strategies_;
};

// The planner entry point: resolves config.custom_strategy / config.strategy
// against the registry and partitions. The returned Partitioning.strategy
// names the concrete strategy that ran.
StatusOr<Partitioning> PartitionWorkflow(const Dag& dag, const CostModel& model,
                                         const std::vector<Bytes>& sizes,
                                         const PlannerConfig& config);

// Re-partitions only `ops` (a not-yet-executed DAG suffix) with the DP
// strategy, treating every operator outside the set as already materialized.
// Execute()'s online re-planning path: cheap enough to run mid-flight, and
// grouping changes never change produced bytes — only job boundaries.
StatusOr<Partitioning> PartitionRemainder(const Dag& dag, const CostModel& model,
                                          const std::vector<Bytes>& sizes,
                                          const PlannerConfig& config,
                                          const std::vector<int>& ops);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_PARTITION_STRATEGY_H_
