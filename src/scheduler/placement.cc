#include "src/scheduler/placement.h"

#include <algorithm>

namespace musketeer {

namespace {

// SplitMix64 finalizer — the same mix the ShardMap ring uses, applied to
// (seed ^ job-name hash) so random placement is deterministic per job.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kLocality:
      return "locality";
    case PlacementPolicy::kRandom:
      return "random";
  }
  return "unknown";
}

std::optional<PlacementPolicy> PlacementPolicyFromName(
    const std::string& name) {
  if (name == "locality" || name == "local") {
    return PlacementPolicy::kLocality;
  }
  if (name == "random" || name == "rand") {
    return PlacementPolicy::kRandom;
  }
  return std::nullopt;
}

ShardPlacer::ShardPlacer(const ShardMap* map, PlacementPolicy policy,
                         uint64_t seed)
    : map_(map), policy_(policy), seed_(seed) {}

namespace {

// Input bytes resident on each candidate shard, per the directory, plus the
// index of the byte-optimal candidate (most resident bytes; lowest shard id
// on ties, so decisions are deterministic across runs).
struct LocalBytes {
  Bytes total = 0;
  std::vector<Bytes> per_candidate;
  size_t best = 0;
};

LocalBytes ResidentBytes(const ShardMap* map,
                         const std::vector<std::pair<std::string, Bytes>>& inputs,
                         const std::vector<int>& candidates) {
  LocalBytes out;
  out.per_candidate.assign(candidates.size(), 0);
  for (const auto& [relation, bytes] : inputs) {
    out.total += bytes;
    if (map == nullptr) {
      continue;
    }
    const int owner = map->OwnerOf(relation);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i] == owner) {
        out.per_candidate[i] += bytes;
        break;
      }
    }
  }
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (out.per_candidate[i] > out.per_candidate[out.best] ||
        (out.per_candidate[i] == out.per_candidate[out.best] &&
         candidates[i] < candidates[out.best])) {
      out.best = i;
    }
  }
  return out;
}

}  // namespace

PlacementDecision ShardPlacer::Place(
    const std::string& job_name,
    const std::vector<std::pair<std::string, Bytes>>& inputs,
    const std::vector<int>& candidates) {
  PlacementDecision decision;
  if (candidates.empty()) {
    return decision;
  }
  const LocalBytes local = ResidentBytes(map_, inputs, candidates);
  size_t chosen = local.best;
  if (policy_ == PlacementPolicy::kRandom) {
    chosen = static_cast<size_t>(
        Mix64(seed_ ^ ShardMap::HashName(job_name)) % candidates.size());
  }
  return Adopt(inputs, candidates, candidates[chosen]);
}

PlacementDecision ShardPlacer::Adopt(
    const std::vector<std::pair<std::string, Bytes>>& inputs,
    const std::vector<int>& candidates, int chosen_shard) {
  PlacementDecision decision;
  if (candidates.empty()) {
    return decision;
  }
  const LocalBytes local = ResidentBytes(map_, inputs, candidates);
  size_t chosen = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == chosen_shard) {
      chosen = i;
      break;
    }
  }
  decision.shard = candidates[chosen];
  decision.local_bytes = local.per_candidate[chosen];
  decision.remote_bytes = local.total - local.per_candidate[chosen];
  decision.locality_hit =
      local.per_candidate[chosen] >= local.per_candidate[local.best];

  ++placements_;
  if (decision.locality_hit) {
    ++locality_hits_;
  }
  cross_shard_bytes_ += decision.remote_bytes;
  return decision;
}

}  // namespace musketeer
