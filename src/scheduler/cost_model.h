// The cost function (§5.2).
//
// Scores running a set of operators as one job on a given engine. Three
// ingredients, exactly as in the paper:
//  1. Data volume: per-operator output-size bounds applied to the run-time
//     input sizes predict intermediate and output volumes. Generative
//     operators (JOIN) have no useful bound, so without history the model
//     uses a conservative multiple of the inputs.
//  2. Operator performance: the one-off calibrated PULL/LOAD/PROCESS/PUSH
//     rates per engine (src/backends/perf_model.cc, the paper's Table 1).
//  3. Workflow history: observed relation sizes from prior runs of the same
//     workflow replace the bounds (src/scheduler/history.h).

#ifndef MUSKETEER_SRC_SCHEDULER_COST_MODEL_H_
#define MUSKETEER_SRC_SCHEDULER_COST_MODEL_H_

#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/backends/backend.h"
#include "src/cluster/cluster.h"
#include "src/cluster/shard_map.h"
#include "src/obs/runtime_history.h"
#include "src/scheduler/history.h"

namespace musketeer {

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

// Known sizes of the workflow's base (DFS-resident) relations.
using RelationSizes = std::unordered_map<std::string, Bytes>;

// Locality context for a shard-placement cost query (PR 8): which shard the
// job would execute on, where relations live, and the *measured* cross-shard
// transfer rate (ShardedDfs::measured_remote_mbps — calibrated from timed
// remote fetches, not an assumed constant). With this set, JobCost adds the
// transfer seconds for every external input the candidate shard does not own,
// so placement naturally sends a job to the shard holding the majority of its
// input bytes.
struct ShardLocality {
  const ShardMap* map = nullptr;  // relation-location directory (not owned)
  int shard = -1;                 // candidate executing shard
  double remote_mbps = 100.0;     // measured cross-shard byte rate
};

class CostModel {
 public:
  // `history` may be nullptr (first run, no workflow knowledge).
  // With `conservative_merging` set, the model refuses to merge past a
  // generative operator whose output size is not known from history (§5.2:
  // on first execution Musketeer "only merges selective operators and
  // generative operators with small output bounds", so JOINs end their job
  // until history tightens their bounds).
  // `calibration` (optional, not owned, must outlive the model) rescales
  // every JobCost by the measured wall-per-sim time scale of the candidate
  // engine, so partitioning decisions reflect observed runtimes rather than
  // the perf model's a-priori constants (src/obs/runtime_history.h).
  CostModel(ClusterConfig cluster, const HistoryStore* history,
            std::string workflow_id, bool conservative_merging = false,
            const RuntimeCalibration* calibration = nullptr);

  // Predicts the nominal output bytes of every node. Base INPUT sizes come
  // from `base_sizes` (run-time information: the inputs sit in the DFS).
  StatusOr<std::vector<Bytes>> PredictSizes(const Dag& dag,
                                            const RelationSizes& base_sizes) const;

  // Estimated makespan of running `ops` as a single job on `engine`;
  // kInfiniteCost when the engine cannot run the set as one job.
  // `sizes` must come from PredictSizes on the same DAG.
  // `locality` (optional) charges cross-shard transfer for externally
  // produced inputs the candidate shard does not own, at the measured DFS
  // byte rate — the term that makes placement locality-aware.
  double JobCost(const Dag& dag, const std::vector<int>& ops, EngineKind engine,
                 const std::vector<Bytes>& sizes,
                 const ShardLocality* locality = nullptr) const;

  const ClusterConfig& cluster() const { return cluster_; }

  // Conservative output multiplier for generative operators without history.
  static constexpr double kConservativeGenerativeFactor = 3.0;

 private:
  // Predicted size of one operator's output from its input sizes.
  Bytes PredictNodeSize(const Dag& dag, const OperatorNode& node,
                        const std::vector<Bytes>& in_bytes) const;

  ClusterConfig cluster_;
  const HistoryStore* history_;  // not owned, may be null
  std::string workflow_id_;
  bool conservative_merging_;
  const RuntimeCalibration* calibration_;  // not owned, may be null
};

// ---- Streaming handoff pricing ---------------------------------------------
// The per-edge barrier-vs-pipeline decision (src/stream/pipeline.h) charges
// the two alternatives in the same sim-seconds currency as JobCost.

// Cost of materializing `bytes` through the DFS between two jobs: the
// producer's PUSH plus the consumer's PULL (and LOAD, for engines with a
// load phase) at the engines' calibrated byte rates.
double BarrierHandoffSeconds(EngineKind producer, EngineKind consumer,
                             const ClusterConfig& cluster, Bytes bytes);

// Cost of moving the same bytes through an in-memory bounded channel:
// a fixed setup charge plus a memory-bandwidth-class byte rate.
double ChannelHandoffSeconds(Bytes bytes);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_COST_MODEL_H_
