// Workflow history store (§5.2, item 3).
//
// Musketeer records information about each job it runs — in particular the
// observed sizes of every relation a workflow produces — and uses it to
// refine the cost model's data-volume predictions on subsequent runs of the
// same workflow. Without history, generative operators (JOIN) have unknown
// output bounds and the model falls back to conservative estimates.
//
// Thread-safety contract: one HistoryStore is shared by every concurrent
// workflow the service runs (src/service/), with cost models calling Lookup
// while finished runs call Record. All accessors take a shared_mutex, so
// concurrent runs of the same workflow refine estimates without data races.
// A Lookup racing a Record sees either the old or the new size — both are
// valid observations, matching the paper's "history refines over runs"
// semantics.

#ifndef MUSKETEER_SRC_SCHEDULER_HISTORY_H_
#define MUSKETEER_SRC_SCHEDULER_HISTORY_H_

#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/units.h"

namespace musketeer {

class HistoryStore {
 public:
  HistoryStore() = default;
  // Copyable (WithPartialKnowledge returns by value); locks the source.
  HistoryStore(const HistoryStore& other);
  HistoryStore& operator=(const HistoryStore& other);

  // Records the observed nominal size of `relation` produced by `workflow`.
  // Re-recording an existing entry replaces the size and bumps its sample
  // count — the count is how merges decide which of two stores' entries has
  // seen more evidence.
  void Record(const std::string& workflow, const std::string& relation,
              Bytes bytes);

  std::optional<Bytes> Lookup(const std::string& workflow,
                              const std::string& relation) const;

  // Observation count for an entry (0 if absent).
  int SamplesFor(const std::string& workflow,
                 const std::string& relation) const;

  // Number of relations recorded for `workflow`.
  int EntriesFor(const std::string& workflow) const;

  void Clear();

  // Keeps only entries whose insertion index (per workflow) is below
  // `fraction` of the total — used to model partially-acquired history.
  HistoryStore WithPartialKnowledge(double fraction) const;

  // Merges `other` into this store. An entry present in only one store is
  // kept; when both stores have the same (workflow, relation), the one with
  // more samples wins (tie goes to the existing entry — it is at least as
  // fresh), and the sample counts are summed since both sides' observations
  // are real. This is how per-shard histories combine into one directory.
  void MergeFrom(const HistoryStore& other);

  // JSON persistence (--history-file): the store serializes as one object
  // keyed by workflow id, each value an array (in insertion order) of
  // {"relation": <name>, "bytes": <n>, "samples": <n>} records.
  std::string ToJson() const;
  // Replaces the store's contents with the parsed document ("samples"
  // defaults to 1 for files written before it existed).
  Status FromJson(const std::string& text);

  Status SaveTo(const std::string& path) const;
  // Missing file is not an error: a service's first launch has no history.
  // Loading into a non-empty store MERGES (MergeFrom semantics) rather than
  // clobbering, so a warm in-memory store survives re-loading a stale file.
  Status LoadFrom(const std::string& path);

 private:
  struct Entry {
    Bytes bytes = 0;
    int order = 0;    // insertion order within the workflow
    int samples = 1;  // number of observations folded into `bytes`
  };
  mutable std::shared_mutex mu_;
  // workflow -> relation -> entry; guarded by mu_
  std::unordered_map<std::string, std::unordered_map<std::string, Entry>> data_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_HISTORY_H_
