#include "src/scheduler/decision_tree.h"

#include "src/opt/idiom.h"

namespace musketeer {

EngineKind DecisionTreeChoice(const Dag& dag, Bytes total_input_bytes,
                              const ClusterConfig& cluster) {
  bool iterative = false;
  bool has_join = false;
  for (const OperatorNode& n : dag.nodes()) {
    iterative = iterative || n.kind == OpKind::kWhile;
    has_join = has_join || n.kind == OpKind::kJoin ||
               n.kind == OpKind::kCrossJoin;
  }
  bool graph = false;
  for (const GraphIdiomMatch& m : DetectGraphIdioms(dag)) {
    graph = graph || m.vertex_centric;
  }

  // Rigid thresholds, single engine for the whole workflow.
  if (graph) {
    return cluster.num_nodes >= 16 ? EngineKind::kPowerGraph
                                   : EngineKind::kGraphChi;
  }
  if (iterative) {
    return EngineKind::kSpark;  // "in-memory engines are for iteration"
  }
  if (total_input_bytes < 1.0 * kGB) {
    return EngineKind::kMetis;  // "small data fits one machine"
  }
  if (has_join && total_input_bytes > 10.0 * kGB) {
    return EngineKind::kHadoop;  // "big joins need a big shuffle"
  }
  return EngineKind::kHadoop;
}

}  // namespace musketeer
