// Locality-aware shard placement (PR 8).
//
// Decides which shard executes a job, given where the job's input relations
// live (the ShardMap directory) and how big they are. The locality policy is
// the paper's data-locality argument applied across shards: send the
// computation to the shard that owns the majority of its input bytes, so the
// cross-shard fetch volume — charged at the measured DFS byte rate by the
// cost model's ShardLocality term — is minimized. The random policy is the
// control arm bench_shard_scaling compares against: deterministic (seeded,
// keyed on the job name) so runs are reproducible, but blind to data
// placement.
//
// Thread-safety: NOT internally synchronized. The ShardCoordinator places
// jobs sequentially from its Run loop; the running stats (placements,
// locality hits, cross-shard bytes) are plain members.

#ifndef MUSKETEER_SRC_SCHEDULER_PLACEMENT_H_
#define MUSKETEER_SRC_SCHEDULER_PLACEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/cluster/shard_map.h"

namespace musketeer {

enum class PlacementPolicy {
  kLocality,  // argmax of input bytes resident on the candidate shard
  kRandom,    // seeded hash of the job name — the locality-blind baseline
};

const char* PlacementPolicyName(PlacementPolicy policy);
std::optional<PlacementPolicy> PlacementPolicyFromName(const std::string& name);

struct PlacementDecision {
  int shard = 0;
  Bytes local_bytes = 0;   // input bytes already resident on `shard`
  Bytes remote_bytes = 0;  // input bytes the shard must fetch cross-shard
  // True when `shard` holds at least as many input bytes as any candidate —
  // i.e. the decision achieved locality. Random placements score hits only
  // by luck, which is exactly the gap the bench measures.
  bool locality_hit = false;
};

class ShardPlacer {
 public:
  // `map` (not owned, may be null for a 1-shard setup) resolves relation
  // ownership; `seed` only matters for kRandom.
  ShardPlacer(const ShardMap* map, PlacementPolicy policy, uint64_t seed = 0);

  // Places one job. `inputs` are the job's externally-produced input
  // relations with their (predicted or actual) nominal sizes; `candidates`
  // are the alive shards eligible to run it (must be non-empty).
  PlacementDecision Place(
      const std::string& job_name,
      const std::vector<std::pair<std::string, Bytes>>& inputs,
      const std::vector<int>& candidates);

  // Records an externally decided placement (the coordinator's cost-model
  // ranking) into the running stats, scoring its locality against the
  // byte-optimal candidate. `chosen_shard` must be one of `candidates`.
  PlacementDecision Adopt(
      const std::vector<std::pair<std::string, Bytes>>& inputs,
      const std::vector<int>& candidates, int chosen_shard);

  uint64_t placements() const { return placements_; }
  uint64_t locality_hits() const { return locality_hits_; }
  Bytes cross_shard_bytes() const { return cross_shard_bytes_; }
  double locality_hit_rate() const {
    return placements_ == 0
               ? 1.0
               : static_cast<double>(locality_hits_) /
                     static_cast<double>(placements_);
  }

  PlacementPolicy policy() const { return policy_; }

 private:
  const ShardMap* map_;  // not owned, may be null
  const PlacementPolicy policy_;
  const uint64_t seed_;

  uint64_t placements_ = 0;
  uint64_t locality_hits_ = 0;
  Bytes cross_shard_bytes_ = 0;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_PLACEMENT_H_
