#include "src/scheduler/partitioner.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <unordered_set>

#include "src/base/parallel.h"
#include "src/base/rng.h"

namespace musketeer {

namespace {

std::vector<EngineKind> EnginesOrDefault(const PartitionOptions& options) {
  if (!options.engines.empty()) {
    return options.engines;
  }
  return std::vector<EngineKind>(kAllEngines.begin(), kAllEngines.end());
}

// Operator (non-INPUT) ids in topological order. Node ids are assigned in
// construction order, which the front-ends emit depth-first — this is the
// single linear ordering the DP heuristic explores (§5.1.2, §8/Fig. 16).
std::vector<int> OperatorOrder(const Dag& dag) {
  std::vector<int> ops;
  for (const OperatorNode& n : dag.nodes()) {
    if (n.kind != OpKind::kInput) {
      ops.push_back(n.id);
    }
  }
  return ops;
}

// Randomized Kahn's algorithm: an alternative topological order of the
// operators, seeded deterministically.
std::vector<int> RandomTopoOrder(const Dag& dag, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> indegree(dag.num_nodes(), 0);
  for (const OperatorNode& n : dag.nodes()) {
    for (int in : n.inputs) {
      (void)in;
      ++indegree[n.id];
    }
  }
  std::vector<int> ready;
  for (const OperatorNode& n : dag.nodes()) {
    if (indegree[n.id] == 0) {
      ready.push_back(n.id);
    }
  }
  std::vector<int> order;
  while (!ready.empty()) {
    size_t pick = rng.NextBounded(ready.size());
    int id = ready[pick];
    ready.erase(ready.begin() + static_cast<long>(pick));
    if (dag.node(id).kind != OpKind::kInput) {
      order.push_back(id);
    }
    for (int c : dag.ConsumersOf(id)) {
      if (--indegree[c] == 0) {
        ready.push_back(c);
      }
    }
  }
  return order;
}

// Cheapest engine for one job; kInfiniteCost if none can run it.
std::pair<EngineKind, double> BestEngine(const Dag& dag, const CostModel& model,
                                         const std::vector<Bytes>& sizes,
                                         const std::vector<int>& ops,
                                         const std::vector<EngineKind>& engines) {
  EngineKind best = engines[0];
  double best_cost = kInfiniteCost;
  for (EngineKind e : engines) {
    double c = model.JobCost(dag, ops, e, sizes);
    if (c < best_cost) {
      best_cost = c;
      best = e;
    }
  }
  return {best, best_cost};
}

}  // namespace

namespace {

StatusOr<Partitioning> PartitionDpOnOrder(const Dag& dag, const CostModel& model,
                                          const std::vector<Bytes>& sizes,
                                          const PartitionOptions& options,
                                          const std::vector<int>& order) {
  std::vector<EngineKind> engines = EnginesOrDefault(options);
  const int n = static_cast<int>(order.size());
  if (n == 0) {
    return InvalidArgumentError("workflow has no operators");
  }

  // best[i]: cheapest way to run the first i operators; boundary[i]/engine[i]
  // reconstruct the final segment of that prefix.
  std::vector<double> best(n + 1, kInfiniteCost);
  std::vector<int> boundary(n + 1, 0);
  std::vector<EngineKind> engine_of(n + 1, engines[0]);
  best[0] = 0;

  for (int i = 1; i <= n; ++i) {
    int min_k = options.enable_merging ? 0 : i - 1;
    for (int k = i - 1; k >= min_k; --k) {
      if (best[k] == kInfiniteCost) {
        continue;
      }
      std::vector<int> segment(order.begin() + k, order.begin() + i);
      auto [eng, cost] = BestEngine(dag, model, sizes, segment, engines);
      if (cost == kInfiniteCost) {
        continue;
      }
      if (best[k] + cost < best[i]) {
        best[i] = best[k] + cost;
        boundary[i] = k;
        engine_of[i] = eng;
      }
    }
  }

  if (best[n] == kInfiniteCost) {
    return FailedPreconditionError(
        "no engine combination can execute this workflow");
  }

  Partitioning out;
  out.total_cost = best[n];
  int i = n;
  while (i > 0) {
    int k = boundary[i];
    JobAssignment job;
    job.ops.assign(order.begin() + k, order.begin() + i);
    job.engine = engine_of[i];
    job.cost = best[i] - best[k];
    out.jobs.push_back(std::move(job));
    i = k;
  }
  std::reverse(out.jobs.begin(), out.jobs.end());
  return out;
}

}  // namespace

StatusOr<Partitioning> PartitionDp(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PartitionOptions& options) {
  auto best = PartitionDpOnOrder(dag, model, sizes, options, OperatorOrder(dag));
  // §8: optionally explore additional randomized topological orders; the
  // cheapest partitioning over all orders wins.
  for (int i = 1; i < options.dp_linear_orders; ++i) {
    std::vector<int> order = RandomTopoOrder(dag, 0x9e3779b9u + i);
    auto candidate = PartitionDpOnOrder(dag, model, sizes, options, order);
    if (!candidate.ok()) {
      continue;
    }
    if (!best.ok() || candidate->total_cost < best->total_cost) {
      best = std::move(candidate);
    }
  }
  return best;
}

namespace {

bool ConnectedToJob(const Dag& dag, int op, const std::vector<int>& job) {
  for (int in : dag.node(op).inputs) {
    for (int member : job) {
      if (member == in) {
        return true;
      }
    }
  }
  return false;
}

bool SomeEngineRuns(const Dag& dag, const std::vector<EngineKind>& engines,
                    const std::vector<int>& job) {
  for (EngineKind e : engines) {
    if (BackendFor(e).CanRunAsSingleJob(dag, job)) {
      return true;
    }
  }
  return false;
}

// Exhaustive enumeration state. One instance searches either the full tree
// (Run) or, when seeded with a prefix assignment, one subtree of the
// parallel search (Seed + Search).
class ExhaustiveSearch {
 public:
  ExhaustiveSearch(const Dag& dag, const CostModel& model,
                   const std::vector<Bytes>& sizes,
                   const std::vector<EngineKind>& engines, bool enable_merging)
      : dag_(dag),
        model_(model),
        sizes_(sizes),
        engines_(engines),
        merging_(enable_merging),
        order_(OperatorOrder(dag)) {}

  StatusOr<Partitioning> Run() {
    if (order_.empty()) {
      return InvalidArgumentError("workflow has no operators");
    }
    assignment_.assign(dag_.num_nodes(), -1);
    Recurse(0);
    if (best_cost_ == kInfiniteCost) {
      return FailedPreconditionError(
          "no engine combination can execute this workflow");
    }
    Partitioning out;
    out.total_cost = best_cost_;
    out.used_exhaustive = true;
    out.jobs = best_jobs_;
    return out;
  }

  // Seeds the search with a fixed assignment of the first `idx` operators in
  // enumeration order; Search() then explores exactly the completions of
  // that prefix (one subtree of the sequential recursion).
  void Seed(const std::vector<std::vector<int>>& jobs, size_t idx) {
    assignment_.assign(dag_.num_nodes(), -1);
    jobs_ = jobs;
    for (size_t j = 0; j < jobs_.size(); ++j) {
      for (int op : jobs_[j]) {
        assignment_[op] = static_cast<int>(j);
      }
    }
    seed_idx_ = idx;
  }

  // A shared lower bound on the cost of the best candidate any concurrent
  // subtree has committed. Pruning against it is strict (>), so a candidate
  // tying the global minimum is never pruned — the winning subtree finds
  // exactly the candidate the sequential search would.
  void set_shared_bound(std::atomic<double>* bound) { shared_bound_ = bound; }

  void Search() { Recurse(seed_idx_); }

  bool found() const { return best_cost_ < kInfiniteCost; }
  double best_cost() const { return best_cost_; }
  const std::vector<JobAssignment>& best_jobs() const { return best_jobs_; }

 private:
  void Recurse(size_t idx) {
    if (idx == order_.size()) {
      Finalize();
      return;
    }
    int op = order_[idx];
    if (merging_) {
      // Try extending every existing job the operator connects to.
      for (size_t j = 0; j < jobs_.size(); ++j) {
        if (!ConnectedToJob(dag_, op, jobs_[j])) {
          continue;
        }
        jobs_[j].push_back(op);
        if (SomeEngineRuns(dag_, engines_, jobs_[j])) {
          assignment_[op] = static_cast<int>(j);
          Recurse(idx + 1);
          assignment_[op] = -1;
        }
        jobs_[j].pop_back();
      }
    }
    // Or start a fresh job.
    jobs_.push_back({op});
    assignment_[op] = static_cast<int>(jobs_.size()) - 1;
    Recurse(idx + 1);
    assignment_[op] = -1;
    jobs_.pop_back();
  }

  // Quotient graph over jobs must be acyclic (a job can only start once all
  // jobs it reads from finished).
  bool QuotientAcyclic() const {
    size_t m = jobs_.size();
    std::vector<std::unordered_set<int>> succ(m);
    std::vector<int> indegree(m, 0);
    for (size_t j = 0; j < m; ++j) {
      for (int op : jobs_[j]) {
        for (int in : dag_.node(op).inputs) {
          int pj = assignment_[in];
          if (pj >= 0 && pj != static_cast<int>(j)) {
            if (succ[pj].insert(static_cast<int>(j)).second) {
              ++indegree[j];
            }
          }
        }
      }
    }
    std::vector<int> queue;
    for (size_t j = 0; j < m; ++j) {
      if (indegree[j] == 0) {
        queue.push_back(static_cast<int>(j));
      }
    }
    size_t seen = 0;
    while (seen < queue.size()) {
      int j = queue[seen++];
      for (int s : succ[j]) {
        if (--indegree[s] == 0) {
          queue.push_back(s);
        }
      }
    }
    return seen == m;
  }

  void Finalize() {
    if (!QuotientAcyclic()) {
      return;
    }
    double total = 0;
    std::vector<JobAssignment> result;
    for (const std::vector<int>& job : jobs_) {
      auto [eng, cost] = CachedBestEngine(job);
      if (cost == kInfiniteCost) {
        return;
      }
      total += cost;
      if (total >= best_cost_) {
        return;  // prune
      }
      if (shared_bound_ != nullptr &&
          total > shared_bound_->load(std::memory_order_relaxed)) {
        return;  // prune against concurrent subtrees (strict: ties survive)
      }
      JobAssignment a;
      a.ops = job;
      std::sort(a.ops.begin(), a.ops.end());
      a.engine = eng;
      a.cost = cost;
      result.push_back(std::move(a));
    }
    best_cost_ = total;
    if (shared_bound_ != nullptr) {
      double cur = shared_bound_->load(std::memory_order_relaxed);
      while (total < cur &&
             !shared_bound_->compare_exchange_weak(cur, total,
                                                   std::memory_order_relaxed)) {
      }
    }
    // Order jobs topologically over the quotient graph so downstream
    // execution can run them front-to-back.
    size_t m = result.size();
    std::vector<std::unordered_set<int>> succ(m);
    std::vector<int> indegree(m, 0);
    std::unordered_map<int, int> job_of;
    for (size_t j = 0; j < m; ++j) {
      for (int op : result[j].ops) {
        job_of[op] = static_cast<int>(j);
      }
    }
    for (size_t j = 0; j < m; ++j) {
      for (int op : result[j].ops) {
        for (int in : dag_.node(op).inputs) {
          auto it = job_of.find(in);
          if (it != job_of.end() && it->second != static_cast<int>(j)) {
            if (succ[it->second].insert(static_cast<int>(j)).second) {
              ++indegree[j];
            }
          }
        }
      }
    }
    std::vector<JobAssignment> ordered;
    std::vector<int> queue;
    for (size_t j = 0; j < m; ++j) {
      if (indegree[j] == 0) {
        queue.push_back(static_cast<int>(j));
      }
    }
    // Stable tie-break by smallest op id keeps output deterministic.
    std::sort(queue.begin(), queue.end(), [&result](int a, int b) {
      return result[a].ops.front() < result[b].ops.front();
    });
    size_t head = 0;
    while (head < queue.size()) {
      int j = queue[head++];
      ordered.push_back(result[j]);
      for (int s : succ[j]) {
        if (--indegree[s] == 0) {
          queue.push_back(s);
        }
      }
    }
    best_jobs_ = std::move(ordered);
  }

  std::pair<EngineKind, double> CachedBestEngine(const std::vector<int>& job) {
    std::vector<int> key = job;
    std::sort(key.begin(), key.end());
    auto it = cost_cache_.find(key);
    if (it != cost_cache_.end()) {
      return it->second;
    }
    auto result = BestEngine(dag_, model_, sizes_, key, engines_);
    cost_cache_.emplace(std::move(key), result);
    return result;
  }

  const Dag& dag_;
  const CostModel& model_;
  const std::vector<Bytes>& sizes_;
  std::vector<EngineKind> engines_;
  bool merging_;
  std::vector<int> order_;

  std::vector<std::vector<int>> jobs_;
  std::vector<int> assignment_;  // node id -> job index (-1 = unassigned)
  size_t seed_idx_ = 0;
  std::atomic<double>* shared_bound_ = nullptr;
  double best_cost_ = kInfiniteCost;
  std::vector<JobAssignment> best_jobs_;
  std::map<std::vector<int>, std::pair<EngineKind, double>> cost_cache_;
};

// A fixed assignment of the first `idx` operators (in enumeration order) —
// the root of one search subtree.
struct SearchPrefix {
  std::vector<std::vector<int>> jobs;
  size_t idx = 0;
};

// Level-synchronous expansion of the recursion's first levels until at least
// `target` subtree roots exist. Children are generated in the exact order
// Recurse tries them (extend job 0..k, then a fresh job), so the returned
// prefixes enumerate subtrees in the sequential DFS encounter order — the
// property the deterministic reduction in PartitionExhaustive relies on.
std::vector<SearchPrefix> EnumeratePrefixes(
    const Dag& dag, const std::vector<EngineKind>& engines, bool merging,
    const std::vector<int>& order, size_t target) {
  std::vector<SearchPrefix> frontier{SearchPrefix{}};
  while (frontier.size() < target && frontier.front().idx < order.size()) {
    std::vector<SearchPrefix> next;
    for (const SearchPrefix& p : frontier) {
      int op = order[p.idx];
      if (merging) {
        for (size_t j = 0; j < p.jobs.size(); ++j) {
          if (!ConnectedToJob(dag, op, p.jobs[j])) {
            continue;
          }
          SearchPrefix child = p;
          child.jobs[j].push_back(op);
          child.idx = p.idx + 1;
          if (SomeEngineRuns(dag, engines, child.jobs[j])) {
            next.push_back(std::move(child));
          }
        }
      }
      SearchPrefix fresh = p;
      fresh.jobs.push_back({op});
      fresh.idx = p.idx + 1;
      next.push_back(std::move(fresh));
    }
    frontier = std::move(next);
  }
  return frontier;
}

}  // namespace

StatusOr<Partitioning> PartitionExhaustive(const Dag& dag, const CostModel& model,
                                           const std::vector<Bytes>& sizes,
                                           const PartitionOptions& options) {
  std::vector<EngineKind> engines = EnginesOrDefault(options);
  std::vector<int> order = OperatorOrder(dag);
  if (order.empty()) {
    return InvalidArgumentError("workflow has no operators");
  }
  int threads = ParallelThreads();
  if (threads <= 1 || order.size() < 4) {
    ExhaustiveSearch search(dag, model, sizes, engines, options.enable_merging);
    return search.Run();
  }

  // Parallel search: fan the top levels of the enumeration out as seeded
  // subtree searches sharing a best-cost bound, then reduce
  // deterministically. Strict-> pruning plus a strict-< reduction in subtree
  // (DFS encounter) order make the chosen partitioning identical to the
  // sequential search's, independent of thread scheduling.
  std::vector<SearchPrefix> prefixes = EnumeratePrefixes(
      dag, engines, options.enable_merging, order,
      static_cast<size_t>(threads) * 4);
  std::atomic<double> bound{kInfiniteCost};
  std::vector<std::unique_ptr<ExhaustiveSearch>> searches(prefixes.size());
  ParallelChunks(prefixes.size(), 1, [&](size_t i, size_t, size_t) {
    auto search = std::make_unique<ExhaustiveSearch>(dag, model, sizes, engines,
                                                     options.enable_merging);
    search->Seed(prefixes[i].jobs, prefixes[i].idx);
    search->set_shared_bound(&bound);
    search->Search();
    searches[i] = std::move(search);
  });
  const ExhaustiveSearch* best = nullptr;
  for (const auto& search : searches) {
    if (search->found() &&
        (best == nullptr || search->best_cost() < best->best_cost())) {
      best = search.get();
    }
  }
  if (best == nullptr) {
    return FailedPreconditionError(
        "no engine combination can execute this workflow");
  }
  Partitioning out;
  out.total_cost = best->best_cost();
  out.used_exhaustive = true;
  out.jobs = best->best_jobs();
  return out;
}

StatusOr<Partitioning> PartitionDag(const Dag& dag, const CostModel& model,
                                    const std::vector<Bytes>& sizes,
                                    const PartitionOptions& options) {
  int ops = static_cast<int>(OperatorOrder(dag).size());
  if (options.force_dp) {
    return PartitionDp(dag, model, sizes, options);
  }
  if (options.force_exhaustive || ops <= options.exhaustive_threshold) {
    return PartitionExhaustive(dag, model, sizes, options);
  }
  return PartitionDp(dag, model, sizes, options);
}

}  // namespace musketeer
