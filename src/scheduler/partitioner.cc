#include "src/scheduler/partitioner.h"

namespace musketeer {

// The shims below intentionally read the deprecated force_* fields: this
// translation unit is the single place the legacy surface is interpreted.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

PlannerConfig PlannerConfigFromPartitionOptions(const PartitionOptions& options) {
  PlannerConfig config;
  config.engines = options.engines;
  config.enable_merging = options.enable_merging;
  config.exhaustive_threshold = options.exhaustive_threshold;
  config.dp_linear_orders = options.dp_linear_orders;
  if (options.force_dp) {
    config.strategy = PartitionStrategyKind::kDp;
  } else if (options.force_exhaustive) {
    config.strategy = PartitionStrategyKind::kExhaustive;
  } else {
    config.strategy = PartitionStrategyKind::kAuto;
  }
  return config;
}

StatusOr<Partitioning> PartitionDp(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PartitionOptions& options) {
  PlannerConfig config = PlannerConfigFromPartitionOptions(options);
  config.strategy = PartitionStrategyKind::kDp;
  return PartitionWorkflow(dag, model, sizes, config);
}

StatusOr<Partitioning> PartitionExhaustive(const Dag& dag, const CostModel& model,
                                           const std::vector<Bytes>& sizes,
                                           const PartitionOptions& options) {
  PlannerConfig config = PlannerConfigFromPartitionOptions(options);
  config.strategy = PartitionStrategyKind::kExhaustive;
  return PartitionWorkflow(dag, model, sizes, config);
}

StatusOr<Partitioning> PartitionDag(const Dag& dag, const CostModel& model,
                                    const std::vector<Bytes>& sizes,
                                    const PartitionOptions& options) {
  return PartitionWorkflow(dag, model, sizes,
                           PlannerConfigFromPartitionOptions(options));
}

#pragma GCC diagnostic pop

}  // namespace musketeer
