// The decision-tree baseline of §6.7 (Fig. 14).
//
// A hand-built tree over back-end features and known characteristics picks a
// single engine for the whole workflow. Its fixed thresholds and inability
// to account for operator merging, shared scans or combinations of engines
// are exactly why it loses to Musketeer's cost function in the paper.

#ifndef MUSKETEER_SRC_SCHEDULER_DECISION_TREE_H_
#define MUSKETEER_SRC_SCHEDULER_DECISION_TREE_H_

#include "src/backends/engine_kind.h"
#include "src/base/units.h"
#include "src/cluster/cluster.h"
#include "src/ir/dag.h"

namespace musketeer {

EngineKind DecisionTreeChoice(const Dag& dag, Bytes total_input_bytes,
                              const ClusterConfig& cluster);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_DECISION_TREE_H_
