// DAG partitioning and automatic back-end mapping (§5).
//
// Partitioning the IR DAG into back-end jobs is an instance of k-way graph
// partitioning (NP-hard), with the optimal k unknown. Musketeer uses an
// exhaustive search for small workflows (optimal w.r.t. the cost function;
// exponential time) and switches to a dynamic-programming heuristic for
// larger DAGs: topologically sort the operators into a linear order, then
//
//   C[n][m] = min_{k<n} C[k][m-1] + min_s cost_s(o_{k+1} ... o_n)
//
// i.e. the best way to run a k-operator prefix in m-1 jobs plus the remaining
// segment as a single job on the cheapest engine s. Because job costs are
// additive and unconstrained in m, min_m C[n][m] collapses to a single-
// dimension recurrence over prefixes, which is what the implementation uses.
//
// Choosing the cheapest engine per job *is* the automatic system mapping of
// §5.2: restricting `engines` to one entry reproduces a user-forced mapping.

#ifndef MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_
#define MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_

#include <vector>

#include "src/scheduler/cost_model.h"

namespace musketeer {

struct JobAssignment {
  std::vector<int> ops;  // node ids in the workflow DAG
  EngineKind engine = EngineKind::kHadoop;
  double cost = 0;
};

struct Partitioning {
  std::vector<JobAssignment> jobs;  // in execution (topological) order
  double total_cost = 0;
  bool used_exhaustive = false;
};

struct PartitionOptions {
  // Engines considered; empty = all seven.
  std::vector<EngineKind> engines;
  // §4.3.2 / Fig. 12 ablation: with merging disabled every operator becomes
  // its own job.
  bool enable_merging = true;
  // Use exhaustive search up to this many operators, the DP heuristic above
  // (the paper's prototype switches at ~18; exhaustive cost grows sharply
  // past 13, Fig. 13).
  int exhaustive_threshold = 12;
  bool force_exhaustive = false;
  bool force_dp = false;
  // §8's proposed remedy for merge opportunities the single linear order
  // breaks (Fig. 16): run the DP over this many randomized topological
  // orders and keep the cheapest partitioning. 1 = the paper's prototype.
  int dp_linear_orders = 1;
};

// The DP heuristic (§5.1.2). Linear in segments × engines (O(N² S)).
StatusOr<Partitioning> PartitionDp(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PartitionOptions& options = {});

// The exhaustive search (§5.1.1): enumerates all partitions into connected
// operator groups whose quotient graph is acyclic; optimal w.r.t. the cost
// function, exponential time.
StatusOr<Partitioning> PartitionExhaustive(const Dag& dag, const CostModel& model,
                                           const std::vector<Bytes>& sizes,
                                           const PartitionOptions& options = {});

// Dispatches on operator count (exhaustive below the threshold).
StatusOr<Partitioning> PartitionDag(const Dag& dag, const CostModel& model,
                                    const std::vector<Bytes>& sizes,
                                    const PartitionOptions& options = {});

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_
