// DEPRECATED partitioner surface — retained as thin shims for one PR.
//
// The free-function trio (PartitionDp / PartitionExhaustive / PartitionDag)
// and the force_* boolean sprawl in PartitionOptions are replaced by the
// PartitionStrategy interface + PlannerConfig in partition_strategy.h; the
// core types (JobAssignment, Partitioning) live there now. Each shim below
// converts its PartitionOptions to a PlannerConfig and dispatches through
// the strategy registry, so behavior is identical — but new code (and all
// in-tree code) should call PartitionWorkflow directly. These shims are
// removed in the next PR.

#ifndef MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_
#define MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_

#include <vector>

#include "src/scheduler/partition_strategy.h"

namespace musketeer {

struct PartitionOptions {
  // Engines considered; empty = all seven.
  std::vector<EngineKind> engines;
  bool enable_merging = true;
  int exhaustive_threshold = 12;
  // Superseded by PlannerConfig::strategy (kExhaustive / kDp).
  [[deprecated("set PlannerConfig::strategy = kExhaustive instead")]]
  bool force_exhaustive = false;
  [[deprecated("set PlannerConfig::strategy = kDp instead")]]
  bool force_dp = false;
  int dp_linear_orders = 1;
};

// Converts the legacy options to the PlannerConfig the registry consumes.
PlannerConfig PlannerConfigFromPartitionOptions(const PartitionOptions& options);

[[deprecated("use PartitionWorkflow with PlannerConfig{.strategy = kDp}")]]
StatusOr<Partitioning> PartitionDp(const Dag& dag, const CostModel& model,
                                   const std::vector<Bytes>& sizes,
                                   const PartitionOptions& options = {});

[[deprecated(
    "use PartitionWorkflow with PlannerConfig{.strategy = kExhaustive}")]]
StatusOr<Partitioning> PartitionExhaustive(const Dag& dag, const CostModel& model,
                                           const std::vector<Bytes>& sizes,
                                           const PartitionOptions& options = {});

[[deprecated("use PartitionWorkflow with PlannerConfig{.strategy = kAuto}")]]
StatusOr<Partitioning> PartitionDag(const Dag& dag, const CostModel& model,
                                    const std::vector<Bytes>& sizes,
                                    const PartitionOptions& options = {});

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SCHEDULER_PARTITIONER_H_
