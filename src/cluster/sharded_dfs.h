// M DFS partitions behind one namespace (PR 8).
//
// ShardedDfs composes M DfsPartitions with a ShardMap location directory.
// Used two ways:
//
//   - As a *global* Dfs (the planner's view): Put routes each relation to
//     its owning partition, Get resolves the owner through the directory.
//     Everything is "local" from this vantage point — the planner never
//     pays fetch charges, placement does.
//   - Through per-shard *views* (View(k)): a Dfs whose IsLocal(name) answers
//     from the directory, and whose Get deep-copies tables another shard
//     owns — timing the copy, which is how the locality cost model gets a
//     *measured* cross-shard byte rate instead of an assumed constant.
//     Put through a view stores into the view's own partition and pins the
//     relation there (placement-near-data: outputs live where they were
//     produced), erasing any stale copy at the previous owner.
//
// Fault story: partitions outlive their shard's compute (the HDFS
// replication stand-in). RemoveShard/DrainShard only remove a shard from
// *placement*; its data stays readable, and Get falls back to scanning all
// partitions (re-pinning on a hit) when the directory's answer misses —
// which is what keeps results bit-identical across shard failovers.

#ifndef MUSKETEER_SRC_CLUSTER_SHARDED_DFS_H_
#define MUSKETEER_SRC_CLUSTER_SHARDED_DFS_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/dfs.h"
#include "src/cluster/shard_map.h"

namespace musketeer {

class ShardedDfs;

// The Dfs a shard's service and engines see: local partition at native
// speed, everything else a measured fetch. Obtained from ShardedDfs::View;
// lifetime is owned by the parent.
class ShardViewDfs final : public Dfs {
 public:
  void Put(const std::string& name, TablePtr table) override;
  StatusOr<TablePtr> Get(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  void Erase(const std::string& name) override;
  // Global namespace: planning against a view must see every relation.
  std::vector<std::string> ListRelations() const override;
  bool IsLocal(const std::string& name) const override;
  // Content-versions are namespace-global, shared with the parent.
  uint64_t VersionOf(const std::string& name) const override;

  // Local-partition namespace: this shard's partition only (the relation
  // endpoints' serving surface — no directory resolution, no fetch).
  StatusOr<TablePtr> GetLocal(const std::string& name) const override;
  void PutLocal(const std::string& name, TablePtr table) override;
  std::vector<std::string> ListLocalRelations() const override;

  // Byte tallies forward to the parent so ShardedDfs aggregates stay whole
  // (the thread-scoped run counters fire in the base implementations).
  void RecordRead(Bytes bytes) override;
  void RecordWrite(Bytes bytes) override;
  void RecordRemoteRead(Bytes bytes) override;

  int shard() const { return shard_; }

 private:
  friend class ShardedDfs;
  ShardViewDfs(ShardedDfs* parent, int shard)
      : parent_(parent), shard_(shard) {}

  ShardedDfs* const parent_;
  const int shard_;
};

class ShardedDfs final : public Dfs {
 public:
  explicit ShardedDfs(
      int num_shards,
      ShardingStrategy strategy = ShardingStrategy::kConsistentHash);
  ~ShardedDfs() override = default;

  // Global namespace operations (the planner / coordinator vantage point).
  void Put(const std::string& name, TablePtr table) override;
  StatusOr<TablePtr> Get(const std::string& name) const override;
  bool Contains(const std::string& name) const override;
  void Erase(const std::string& name) override;
  std::vector<std::string> ListRelations() const override;

  // The global vantage point holds everything "locally".
  StatusOr<TablePtr> GetLocal(const std::string& name) const override {
    return Get(name);
  }
  void PutLocal(const std::string& name, TablePtr table) override {
    Put(name, std::move(table));
  }
  std::vector<std::string> ListLocalRelations() const override {
    return ListRelations();
  }

  // Per-shard view; k in [0, num_shards).
  Dfs* View(int shard);

  ShardMap& shard_map() { return map_; }
  const ShardMap& shard_map() const { return map_; }
  int num_shards() const { return static_cast<int>(partitions_.size()); }
  DfsPartition& partition(int shard) { return *partitions_[shard]; }

  // Fetch-over-network accounting: every remote Get through a view counts
  // here (nominal bytes; copy time measured on the physical sample).
  uint64_t remote_fetches() const {
    return remote_fetches_.load(std::memory_order_relaxed);
  }
  Bytes remote_bytes_fetched() const {
    return remote_bytes_.load(std::memory_order_relaxed);
  }
  // Measured cross-shard transfer rate (MB/s) from the timed copies;
  // `fallback_remote_mbps` until the first fetch. This is the rate the
  // locality cost term charges (ShardLocality in cost_model.h).
  double measured_remote_mbps() const;
  void set_fallback_remote_mbps(double mbps) { fallback_remote_mbps_ = mbps; }

 private:
  friend class ShardViewDfs;

  // Aggregate-tally relays for the views (TallyRead et al. are protected in
  // Dfs and not reachable through a ShardedDfs* from another class).
  void AggregateRead(Bytes bytes) { TallyRead(bytes); }
  void AggregateWrite(Bytes bytes) { TallyWrite(bytes); }
  void AggregateRemoteRead(Bytes bytes) { TallyRemoteRead(bytes); }
  void AggregateBumpVersion(const std::string& name) { BumpVersion(name); }

  // Resolve `name` for a reader on `shard` (-1 = the global view): local
  // pointer when the owner matches, otherwise a timed deep copy. Falls back
  // to scanning every partition (and re-pinning) when the directory's
  // answer has no data — the post-failover recovery path.
  StatusOr<TablePtr> FetchForShard(const std::string& name, int shard) const;

  // mutable: FetchForShard (const — it serves reads) repairs the directory
  // after a miss; ShardMap is internally synchronized.
  mutable ShardMap map_;
  std::vector<std::unique_ptr<DfsPartition>> partitions_;
  std::vector<std::unique_ptr<ShardViewDfs>> views_;

  mutable std::atomic<uint64_t> remote_fetches_{0};
  mutable std::atomic<Bytes> remote_bytes_{0};        // nominal
  mutable std::atomic<Bytes> copied_sample_bytes_{0}; // physical
  mutable std::atomic<double> copy_seconds_{0};
  double fallback_remote_mbps_ = 100.0;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_SHARDED_DFS_H_
