// Simulated shared distributed filesystem (stands in for HDFS).
//
// All workflow inputs, outputs and *inter-job* intermediates live here, as in
// the paper's deployment ("we use a shared HDFS as the storage layer").
// Engines pull inputs from the DFS, push outputs back, and every system
// boundary crossing therefore pays I/O — which is exactly what makes
// combining back-ends a measurable trade-off (Fig. 9).

#ifndef MUSKETEER_SRC_CLUSTER_DFS_H_
#define MUSKETEER_SRC_CLUSTER_DFS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/table.h"

namespace musketeer {

class Dfs {
 public:
  // Stores (or replaces) a relation.
  void Put(const std::string& name, TablePtr table);

  // Fetches a relation; NotFound if absent.
  StatusOr<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;
  void Erase(const std::string& name);

  std::vector<std::string> ListRelations() const;

  // Aggregate statistics maintained by the engines (bytes moved through the
  // DFS over a workflow's lifetime).
  void RecordRead(Bytes bytes) { bytes_read_ += bytes; }
  void RecordWrite(Bytes bytes) { bytes_written_ += bytes; }
  Bytes bytes_read() const { return bytes_read_; }
  Bytes bytes_written() const { return bytes_written_; }
  void ResetStats() {
    bytes_read_ = 0;
    bytes_written_ = 0;
  }

 private:
  std::unordered_map<std::string, TablePtr> relations_;
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_DFS_H_
