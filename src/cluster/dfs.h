// Simulated shared distributed filesystem (stands in for HDFS).
//
// All workflow inputs, outputs and *inter-job* intermediates live here, as in
// the paper's deployment ("we use a shared HDFS as the storage layer").
// Engines pull inputs from the DFS, push outputs back, and every system
// boundary crossing therefore pays I/O — which is exactly what makes
// combining back-ends a measurable trade-off (Fig. 9).
//
// Thread-safety contract: a single Dfs is shared by every concurrently
// executing workflow (src/service/), so the namespace is guarded by a
// shared_mutex (concurrent readers, exclusive writers) and the byte
// counters are relaxed atomics. Tables themselves are immutable once Put
// (TablePtr is shared_ptr<const Table>), so handing out the pointer under a
// shared lock is safe.

#ifndef MUSKETEER_SRC_CLUSTER_DFS_H_
#define MUSKETEER_SRC_CLUSTER_DFS_H_

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/table.h"

namespace musketeer {

class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  // Stores (or replaces) a relation.
  void Put(const std::string& name, TablePtr table);

  // Fetches a relation; NotFound if absent.
  StatusOr<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const;
  void Erase(const std::string& name);

  std::vector<std::string> ListRelations() const;

  // Aggregate statistics maintained by the engines (bytes moved through the
  // DFS over a workflow's lifetime). Relaxed ordering: the counters are
  // monotonic tallies, never used to synchronize other memory. Each call
  // also charges the calling thread's active ScopedDfsRunCounters (if any),
  // which is how per-run byte accounting stays exact under concurrency.
  void RecordRead(Bytes bytes);
  void RecordWrite(Bytes bytes);
  Bytes bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  Bytes bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

 private:
  // Bytes is a double; fetch_add on atomic<double> is C++20 but not lock-free
  // everywhere, so spell it as a CAS loop that any toolchain compiles.
  static void AtomicAdd(std::atomic<Bytes>* counter, Bytes delta) {
    Bytes current = counter->load(std::memory_order_relaxed);
    while (!counter->compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed)) {
    }
  }

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, TablePtr> relations_;  // guarded by mu_
  std::atomic<Bytes> bytes_read_{0};
  std::atomic<Bytes> bytes_written_{0};
};

// Attributes DFS traffic to one logical run. While an instance is alive,
// every RecordRead/RecordWrite made *on this thread* is also tallied here,
// so a run's byte deltas exclude traffic from concurrently executing
// workflows on other threads (which the old before/after snapshot of the
// shared counters could not). Scopes nest: an inner scope's totals propagate
// into the enclosing scope when it closes, so an outer "whole submission"
// scope still sees bytes charged inside a per-job scope.
class ScopedDfsRunCounters {
 public:
  ScopedDfsRunCounters();
  ~ScopedDfsRunCounters();
  ScopedDfsRunCounters(const ScopedDfsRunCounters&) = delete;
  ScopedDfsRunCounters& operator=(const ScopedDfsRunCounters&) = delete;

  Bytes bytes_read() const { return read_; }
  Bytes bytes_written() const { return written_; }

 private:
  friend class Dfs;
  Bytes read_ = 0;
  Bytes written_ = 0;
  ScopedDfsRunCounters* prev_;  // enclosing scope on this thread, if any
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_DFS_H_
