// Simulated shared distributed filesystem (stands in for HDFS).
//
// All workflow inputs, outputs and *inter-job* intermediates live here, as in
// the paper's deployment ("we use a shared HDFS as the storage layer").
// Engines pull inputs from the DFS, push outputs back, and every system
// boundary crossing therefore pays I/O — which is exactly what makes
// combining back-ends a measurable trade-off (Fig. 9).
//
// Sharded layout (PR 8): the raw relation store is factored into
// DfsPartition — the unit a single service shard owns. The seed-behavior
// Dfs owns exactly one partition; ShardedDfs (sharded_dfs.h) composes M
// partitions behind a ShardMap relation-location directory and hands out
// per-shard views whose Get() pays a measured fetch-over-network charge for
// relations another shard owns. The namespace operations are virtual so
// those views slot in anywhere a Dfs* is accepted (engines, the service,
// the network layer), while plain `Dfs dfs;` keeps the one-partition seed
// semantics.
//
// Thread-safety contract: a single Dfs is shared by every concurrently
// executing workflow (src/service/), so the namespace is guarded by a
// shared_mutex (concurrent readers, exclusive writers) and the byte
// counters are relaxed atomics. Tables themselves are immutable once Put
// (TablePtr is shared_ptr<const Table>), so handing out the pointer under a
// shared lock is safe.

#ifndef MUSKETEER_SRC_CLUSTER_DFS_H_
#define MUSKETEER_SRC_CLUSTER_DFS_H_

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/relational/table.h"

namespace musketeer {

// The raw relation store one shard owns: a name → table map under a
// shared_mutex. No byte accounting here — partitions are storage, the Dfs
// layers above them are the accounting boundary.
class DfsPartition {
 public:
  DfsPartition() = default;
  DfsPartition(const DfsPartition&) = delete;
  DfsPartition& operator=(const DfsPartition&) = delete;

  void Put(const std::string& name, TablePtr table);
  StatusOr<TablePtr> Get(const std::string& name) const;
  bool Contains(const std::string& name) const;
  void Erase(const std::string& name);
  std::vector<std::string> ListRelations() const;  // sorted
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, TablePtr> relations_;  // guarded by mu_
};

class Dfs {
 public:
  Dfs() = default;
  virtual ~Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  // Stores (or replaces) a relation.
  virtual void Put(const std::string& name, TablePtr table);

  // Fetches a relation; NotFound if absent.
  virtual StatusOr<TablePtr> Get(const std::string& name) const;

  virtual bool Contains(const std::string& name) const;
  virtual void Erase(const std::string& name);

  virtual std::vector<std::string> ListRelations() const;

  // Local-partition namespace: ONLY what this node physically holds, never
  // resolved through a directory or fetched from peers. The network relation
  // endpoints (GET/PUT /relation) serve from these — a peer asking "what do
  // you hold" must not trigger recursive cross-shard resolution (two event
  // loops asking each other is a distributed deadlock). The base Dfs is its
  // own single partition, so the defaults are just the plain operations.
  virtual StatusOr<TablePtr> GetLocal(const std::string& name) const {
    return Dfs::Get(name);
  }
  virtual void PutLocal(const std::string& name, TablePtr table) {
    Dfs::Put(name, std::move(table));
  }
  virtual std::vector<std::string> ListLocalRelations() const {
    return Dfs::ListRelations();
  }

  // Monotone content-version of a relation: 0 when the name has never been
  // stored, bumped by every Put/overwrite (including shard failover re-puts
  // and peer pushes). Incremental recomputation (src/stream/fingerprint.h)
  // hashes these into per-job fingerprints, so the contract is strictly
  // "version changed => content may have changed"; a version is never reused
  // for different bytes. Versions live in the Dfs-level namespace (not the
  // partition) so sharded views share one counter space with their parent.
  virtual uint64_t VersionOf(const std::string& name) const;

  // True when `name` is stored on the partition this Dfs fronts — i.e. a
  // read costs local DFS bandwidth, not a cross-shard fetch. The
  // single-partition base stores everything locally; sharded views answer
  // from the relation-location directory. Engines split their pull
  // accounting on this (RecordRead vs RecordRemoteRead).
  virtual bool IsLocal(const std::string& name) const {
    (void)name;
    return true;
  }

  // Aggregate statistics maintained by the engines (bytes moved through the
  // DFS over a workflow's lifetime). Relaxed ordering: the counters are
  // monotonic tallies, never used to synchronize other memory. Each call
  // also charges the calling thread's active ScopedDfsRunCounters (if any),
  // which is how per-run byte accounting stays exact under concurrency.
  // Virtual so per-shard views can forward into their owning ShardedDfs and
  // keep its aggregate counters whole. RecordRemoteRead charges BOTH the
  // read tally and the remote subset: bytes_remote_read() <= bytes_read()
  // always, and totals are unchanged whether a read was local or fetched.
  virtual void RecordRead(Bytes bytes);
  virtual void RecordWrite(Bytes bytes);
  virtual void RecordRemoteRead(Bytes bytes);
  Bytes bytes_read() const { return bytes_read_.load(std::memory_order_relaxed); }
  Bytes bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  Bytes bytes_remote_read() const {
    return bytes_remote_read_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    bytes_remote_read_.store(0, std::memory_order_relaxed);
  }

 protected:
  // Bytes is a double; fetch_add on atomic<double> is C++20 but not lock-free
  // everywhere, so spell it as a CAS loop that any toolchain compiles.
  static void AtomicAdd(std::atomic<Bytes>* counter, Bytes delta) {
    Bytes current = counter->load(std::memory_order_relaxed);
    while (!counter->compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed)) {
    }
  }

  // Counter-only tallies (no thread-scoped run-counter charge). Sharded
  // views forward these into their parent so the aggregate stays whole
  // without double-charging the per-run scope.
  void TallyRead(Bytes bytes) { AtomicAdd(&bytes_read_, bytes); }
  void TallyWrite(Bytes bytes) { AtomicAdd(&bytes_written_, bytes); }
  void TallyRemoteRead(Bytes bytes) {
    AtomicAdd(&bytes_read_, bytes);
    AtomicAdd(&bytes_remote_read_, bytes);
  }

  // Advances the content-version of `name`. Dfs::Put calls this; overrides
  // that store without going through the base Put (sharded routing, peer
  // pushes) must call it themselves or forward into their parent.
  void BumpVersion(const std::string& name);

 private:
  mutable std::shared_mutex version_mu_;
  std::unordered_map<std::string, uint64_t> versions_;  // guarded by version_mu_
  DfsPartition local_;
  std::atomic<Bytes> bytes_read_{0};
  std::atomic<Bytes> bytes_written_{0};
  std::atomic<Bytes> bytes_remote_read_{0};
};

// Attributes DFS traffic to one logical run. While an instance is alive,
// every RecordRead/RecordWrite/RecordRemoteRead made *on this thread* is
// also tallied here, so a run's byte deltas exclude traffic from
// concurrently executing workflows on other threads (which the old
// before/after snapshot of the shared counters could not). Scopes nest: an
// inner scope's totals propagate into the enclosing scope when it closes,
// so an outer "whole submission" scope still sees bytes charged inside a
// per-job scope. Remote-fetch bytes are a subset of bytes_read(): the
// locality cost model calibrates its cross-shard term from exactly this
// split.
class ScopedDfsRunCounters {
 public:
  ScopedDfsRunCounters();
  ~ScopedDfsRunCounters();
  ScopedDfsRunCounters(const ScopedDfsRunCounters&) = delete;
  ScopedDfsRunCounters& operator=(const ScopedDfsRunCounters&) = delete;

  Bytes bytes_read() const { return read_; }
  Bytes bytes_written() const { return written_; }
  Bytes bytes_remote_read() const { return remote_read_; }

 private:
  friend class Dfs;
  Bytes read_ = 0;
  Bytes written_ = 0;
  Bytes remote_read_ = 0;
  ScopedDfsRunCounters* prev_;  // enclosing scope on this thread, if any
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_DFS_H_
