#include "src/cluster/sharded_dfs.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace musketeer {

// ---- ShardViewDfs ----------------------------------------------------------

void ShardViewDfs::Put(const std::string& name, TablePtr table) {
  // Placement-near-data: outputs land in the producing shard's partition and
  // the directory pins them there. A stale copy at the previous owner (e.g.
  // an overwritten base relation) is dropped so there is exactly one
  // authoritative location.
  const int previous = parent_->map_.OwnerOf(name);
  parent_->partitions_[static_cast<size_t>(shard_)]->Put(name, std::move(table));
  parent_->map_.Pin(name, shard_);
  if (previous != shard_ && previous >= 0 &&
      previous < parent_->num_shards()) {
    parent_->partitions_[static_cast<size_t>(previous)]->Erase(name);
  }
  // Versions are namespace-global: a failover re-put through a view must
  // invalidate fingerprints exactly like a global overwrite would.
  parent_->AggregateBumpVersion(name);
}

uint64_t ShardViewDfs::VersionOf(const std::string& name) const {
  return parent_->VersionOf(name);
}

StatusOr<TablePtr> ShardViewDfs::Get(const std::string& name) const {
  return parent_->FetchForShard(name, shard_);
}

bool ShardViewDfs::Contains(const std::string& name) const {
  return parent_->Contains(name);
}

void ShardViewDfs::Erase(const std::string& name) { parent_->Erase(name); }

std::vector<std::string> ShardViewDfs::ListRelations() const {
  return parent_->ListRelations();
}

bool ShardViewDfs::IsLocal(const std::string& name) const {
  return parent_->map_.OwnerOf(name) == shard_;
}

StatusOr<TablePtr> ShardViewDfs::GetLocal(const std::string& name) const {
  return parent_->partitions_[static_cast<size_t>(shard_)]->Get(name);
}

void ShardViewDfs::PutLocal(const std::string& name, TablePtr table) {
  Put(name, std::move(table));  // already stores into this shard + pins
}

std::vector<std::string> ShardViewDfs::ListLocalRelations() const {
  return parent_->partitions_[static_cast<size_t>(shard_)]->ListRelations();
}

void ShardViewDfs::RecordRead(Bytes bytes) {
  Dfs::RecordRead(bytes);  // view tally + the thread-scoped run counters
  parent_->AggregateRead(bytes);  // aggregate tally only (no double charge)
}

void ShardViewDfs::RecordWrite(Bytes bytes) {
  Dfs::RecordWrite(bytes);
  parent_->AggregateWrite(bytes);
}

void ShardViewDfs::RecordRemoteRead(Bytes bytes) {
  Dfs::RecordRemoteRead(bytes);
  parent_->AggregateRemoteRead(bytes);
}

// ---- ShardedDfs ------------------------------------------------------------

ShardedDfs::ShardedDfs(int num_shards, ShardingStrategy strategy)
    : map_(num_shards, strategy) {
  const int count = std::max(1, num_shards);
  partitions_.reserve(static_cast<size_t>(count));
  views_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    partitions_.push_back(std::make_unique<DfsPartition>());
    views_.push_back(
        std::unique_ptr<ShardViewDfs>(new ShardViewDfs(this, i)));
  }
}

Dfs* ShardedDfs::View(int shard) {
  return views_[static_cast<size_t>(shard)].get();
}

void ShardedDfs::Put(const std::string& name, TablePtr table) {
  int owner = map_.OwnerOf(name);
  if (owner < 0 || owner >= num_shards()) {
    owner = 0;
  }
  partitions_[static_cast<size_t>(owner)]->Put(name, std::move(table));
  // Routed straight into a partition (not through Dfs::Put), so the version
  // bump is explicit here.
  BumpVersion(name);
}

StatusOr<TablePtr> ShardedDfs::Get(const std::string& name) const {
  // The global vantage point: resolve through the directory, no fetch
  // charge (shard = -1 never mismatches an owner).
  return FetchForShard(name, -1);
}

bool ShardedDfs::Contains(const std::string& name) const {
  const int owner = map_.OwnerOf(name);
  if (owner >= 0 && owner < num_shards() &&
      partitions_[static_cast<size_t>(owner)]->Contains(name)) {
    return true;
  }
  for (const auto& partition : partitions_) {
    if (partition->Contains(name)) {
      return true;
    }
  }
  return false;
}

void ShardedDfs::Erase(const std::string& name) {
  for (const auto& partition : partitions_) {
    partition->Erase(name);
  }
  map_.Unpin(name);
}

std::vector<std::string> ShardedDfs::ListRelations() const {
  std::set<std::string> names;
  for (const auto& partition : partitions_) {
    for (std::string& name : partition->ListRelations()) {
      names.insert(std::move(name));
    }
  }
  return {names.begin(), names.end()};
}

StatusOr<TablePtr> ShardedDfs::FetchForShard(const std::string& name,
                                             int shard) const {
  int owner = map_.OwnerOf(name);
  StatusOr<TablePtr> table =
      (owner >= 0 && owner < num_shards())
          ? partitions_[static_cast<size_t>(owner)]->Get(name)
          : StatusOr<TablePtr>(
                NotFoundError("DFS relation '" + name + "' does not exist"));
  if (!table.ok()) {
    // Directory miss (post-failover, or a membership change that remapped a
    // base relation): the data still lives in some partition — find it and
    // repair the directory so the next reader resolves in one hop.
    for (int k = 0; k < num_shards(); ++k) {
      auto found = partitions_[static_cast<size_t>(k)]->Get(name);
      if (found.ok()) {
        map_.Pin(name, k);
        owner = k;
        table = std::move(found);
        break;
      }
    }
    if (!table.ok()) {
      return table.status();
    }
  }
  if (shard < 0 || owner == shard) {
    return table;  // local read (or the global view): no fetch charge
  }
  // Cross-shard fetch: deep-copy the table (columns and all) and time it —
  // the measured byte rate is what the locality cost term charges. The copy
  // is bit-identical by construction (Table's copy ctor), so sharded runs
  // stay Table::Identical to 1-shard runs.
  const auto start = std::chrono::steady_clock::now();
  auto copy = std::make_shared<Table>(**table);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  remote_fetches_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&remote_bytes_, copy->nominal_bytes());
  AtomicAdd(&copied_sample_bytes_, copy->sample_bytes());
  AtomicAdd(&copy_seconds_, seconds);
  return TablePtr(std::move(copy));
}

double ShardedDfs::measured_remote_mbps() const {
  const double seconds = copy_seconds_.load(std::memory_order_relaxed);
  const Bytes bytes = copied_sample_bytes_.load(std::memory_order_relaxed);
  if (seconds <= 0 || bytes <= 0) {
    return fallback_remote_mbps_;
  }
  return (bytes / seconds) / (1024.0 * 1024.0);
}

}  // namespace musketeer
