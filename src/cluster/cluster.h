// Cluster model.
//
// Substitutes the paper's physical testbeds: a 100-node Amazon EC2 cluster of
// m1.xlarge instances and a dedicated seven-machine local cluster, both with
// a shared HDFS storage layer. The model captures what the engine simulators
// need: node count and per-node streaming I/O / network bandwidth. Distributed
// engines aggregate bandwidth across the nodes they use; single-machine
// engines (Metis, GraphChi, serial C) get exactly one node's worth.

#ifndef MUSKETEER_SRC_CLUSTER_CLUSTER_H_
#define MUSKETEER_SRC_CLUSTER_CLUSTER_H_

#include <algorithm>
#include <string>

#include "src/base/units.h"

namespace musketeer {

struct ClusterConfig {
  std::string name;
  int num_nodes = 1;
  int cores_per_node = 4;
  // Per-node HDFS streaming bandwidth (multi-threaded readers/writers).
  double node_read_mbps = 100.0;
  double node_write_mbps = 60.0;
  // Per-node all-to-all shuffle bandwidth.
  double network_mbps = 40.0;

  // Aggregate read bandwidth (bytes/s) over `nodes` participating machines.
  double ReadBandwidth(int nodes) const {
    return MBps(node_read_mbps) * std::min(nodes, num_nodes);
  }
  double WriteBandwidth(int nodes) const {
    return MBps(node_write_mbps) * std::min(nodes, num_nodes);
  }
  double ShuffleBandwidth(int nodes) const {
    return MBps(network_mbps) * std::min(nodes, num_nodes);
  }
};

// The dedicated seven-machine local cluster from §2.1 / §6.1.
ClusterConfig LocalCluster();

// EC2 m1.xlarge cluster of the given size (§2.2 / §6.1 uses 16 and 100).
ClusterConfig Ec2Cluster(int num_nodes);

// A single workstation, for serial / single-machine runs.
ClusterConfig SingleMachine();

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_CLUSTER_H_
