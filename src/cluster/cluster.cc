#include "src/cluster/cluster.h"

namespace musketeer {

ClusterConfig LocalCluster() {
  ClusterConfig c;
  c.name = "local-7";
  c.num_nodes = 7;
  c.cores_per_node = 8;
  c.node_read_mbps = 100.0;
  c.node_write_mbps = 60.0;
  c.network_mbps = 60.0;  // dedicated switch, low contention
  return c;
}

ClusterConfig Ec2Cluster(int num_nodes) {
  ClusterConfig c;
  c.name = "ec2-" + std::to_string(num_nodes);
  c.num_nodes = num_nodes;
  c.cores_per_node = 4;  // m1.xlarge
  c.node_read_mbps = 80.0;
  c.node_write_mbps = 50.0;
  c.network_mbps = 35.0;  // shared tenancy
  return c;
}

ClusterConfig SingleMachine() {
  ClusterConfig c;
  c.name = "single";
  c.num_nodes = 1;
  c.cores_per_node = 8;
  c.node_read_mbps = 120.0;
  c.node_write_mbps = 80.0;
  c.network_mbps = 0.0;
  return c;
}

}  // namespace musketeer
