// Relation-location directory for the sharded DFS (PR 8).
//
// Maps every relation name to the shard that owns its partition. Two layers:
//
//   1. A pluggable hash-partitioning *strategy* decides where unseen (base)
//      relations live. kConsistentHash builds the classic ring with virtual
//      nodes, so adding or removing a shard moves only ~1/M of the keyspace
//      (the stability property cluster_test asserts); kModulo is the naive
//      hash(name) % M baseline the RDF-partitioning comparison (PAPERS.md)
//      measures against — cheap, but re-sharding moves almost everything.
//   2. A *pin* directory recording where produced relations actually landed:
//      a shard that executes a job Put()s the outputs into its own partition
//      and pins them there, which is what makes placement-near-data work for
//      intermediates (the strategy only ever places base inputs).
//
// Thread-safety: all operations take a shared_mutex; reads (OwnerOf — the
// placement hot path) share the lock, membership changes and pins are
// exclusive.

#ifndef MUSKETEER_SRC_CLUSTER_SHARD_MAP_H_
#define MUSKETEER_SRC_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace musketeer {

enum class ShardingStrategy {
  kConsistentHash,  // ring + virtual nodes; <= ~1/M keys move per change
  kModulo,          // hash(name) % alive-count; re-sharding moves ~all keys
};

const char* ShardingStrategyName(ShardingStrategy strategy);
std::optional<ShardingStrategy> ShardingStrategyFromName(
    const std::string& name);

class ShardMap {
 public:
  // Shards are born 0..num_shards-1 and all alive. `vnodes_per_shard` spreads
  // each shard over the ring (consistent hashing only); 128 keeps the
  // expected move fraction on membership change within a few percent of the
  // ideal 1/(M+1).
  explicit ShardMap(int num_shards,
                    ShardingStrategy strategy = ShardingStrategy::kConsistentHash,
                    int vnodes_per_shard = 128);

  // The shard owning `name`: its pinned location when one exists, otherwise
  // the strategy's placement among alive shards.
  int OwnerOf(const std::string& name) const;

  // The strategy's placement, ignoring pins (what OwnerOf returns for a
  // relation no shard has produced yet).
  int StrategyOwnerOf(const std::string& name) const;

  // Records that `shard` holds the authoritative copy of `name`. Pins
  // survive membership changes (the partition's data outlives its shard's
  // compute — the DFS-replication story); callers re-pin on migration.
  void Pin(const std::string& name, int shard);
  void Unpin(const std::string& name);
  std::optional<int> PinnedOwner(const std::string& name) const;

  // Membership. AddShard returns the new shard's id (ids are never reused).
  // RemoveShard only changes future *strategy* placements; pinned relations
  // keep reporting their (now dead) owner until re-pinned.
  int AddShard();
  void RemoveShard(int shard);
  bool IsAlive(int shard) const;
  std::vector<int> AliveShards() const;  // sorted
  int num_alive() const;
  // Upper bound over all ids ever issued (alive or not).
  int max_shard_id() const;

  ShardingStrategy strategy() const { return strategy_; }

  // Deterministic FNV-1a over the name bytes — fixed across platforms and
  // runs, so ownership (and therefore placement and every test asserting on
  // it) is stable.
  static uint64_t HashName(const std::string& name);

 private:
  void RebuildRingLocked();  // requires exclusive mu_

  const ShardingStrategy strategy_;
  const int vnodes_;

  mutable std::shared_mutex mu_;
  int next_shard_id_ = 0;                         // guarded by mu_
  std::vector<int> alive_;                        // sorted; guarded by mu_
  std::vector<std::pair<uint64_t, int>> ring_;    // sorted by hash; mu_
  std::unordered_map<std::string, int> pins_;     // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CLUSTER_SHARD_MAP_H_
