#include "src/cluster/dfs.h"

#include <algorithm>
#include <mutex>

namespace musketeer {

namespace {
// Innermost run-counter scope on this thread (nullptr = no scope active).
thread_local ScopedDfsRunCounters* t_run_counters = nullptr;
}  // namespace

// ---- DfsPartition ----------------------------------------------------------

void DfsPartition::Put(const std::string& name, TablePtr table) {
  std::unique_lock lock(mu_);
  relations_[name] = std::move(table);
}

StatusOr<TablePtr> DfsPartition::Get(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return NotFoundError("DFS relation '" + name + "' does not exist");
  }
  return it->second;
}

bool DfsPartition::Contains(const std::string& name) const {
  std::shared_lock lock(mu_);
  return relations_.count(name) > 0;
}

void DfsPartition::Erase(const std::string& name) {
  std::unique_lock lock(mu_);
  relations_.erase(name);
}

std::vector<std::string> DfsPartition::ListRelations() const {
  std::vector<std::string> names;
  {
    std::shared_lock lock(mu_);
    names.reserve(relations_.size());
    for (const auto& [name, table] : relations_) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t DfsPartition::size() const {
  std::shared_lock lock(mu_);
  return relations_.size();
}

// ---- Dfs -------------------------------------------------------------------

void Dfs::RecordRead(Bytes bytes) {
  TallyRead(bytes);
  if (t_run_counters != nullptr) {
    t_run_counters->read_ += bytes;
  }
}

void Dfs::RecordWrite(Bytes bytes) {
  TallyWrite(bytes);
  if (t_run_counters != nullptr) {
    t_run_counters->written_ += bytes;
  }
}

void Dfs::RecordRemoteRead(Bytes bytes) {
  TallyRemoteRead(bytes);
  if (t_run_counters != nullptr) {
    t_run_counters->read_ += bytes;
    t_run_counters->remote_read_ += bytes;
  }
}

ScopedDfsRunCounters::ScopedDfsRunCounters() : prev_(t_run_counters) {
  t_run_counters = this;
}

ScopedDfsRunCounters::~ScopedDfsRunCounters() {
  t_run_counters = prev_;
  if (prev_ != nullptr) {
    prev_->read_ += read_;
    prev_->written_ += written_;
    prev_->remote_read_ += remote_read_;
  }
}

void Dfs::Put(const std::string& name, TablePtr table) {
  local_.Put(name, std::move(table));
  BumpVersion(name);
}

uint64_t Dfs::VersionOf(const std::string& name) const {
  std::shared_lock lock(version_mu_);
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

void Dfs::BumpVersion(const std::string& name) {
  std::unique_lock lock(version_mu_);
  ++versions_[name];
}

StatusOr<TablePtr> Dfs::Get(const std::string& name) const {
  return local_.Get(name);
}

bool Dfs::Contains(const std::string& name) const {
  return local_.Contains(name);
}

void Dfs::Erase(const std::string& name) { local_.Erase(name); }

std::vector<std::string> Dfs::ListRelations() const {
  return local_.ListRelations();
}

}  // namespace musketeer
