#include "src/cluster/shard_map.h"

#include <algorithm>
#include <limits>
#include <mutex>

namespace musketeer {

namespace {

// SplitMix64 finalizer: decorrelates the (shard, vnode) lattice into ring
// positions so vnodes of one shard do not cluster.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ShardingStrategyName(ShardingStrategy strategy) {
  switch (strategy) {
    case ShardingStrategy::kConsistentHash:
      return "consistent-hash";
    case ShardingStrategy::kModulo:
      return "modulo";
  }
  return "unknown";
}

std::optional<ShardingStrategy> ShardingStrategyFromName(
    const std::string& name) {
  if (name == "consistent-hash" || name == "consistent" || name == "ring") {
    return ShardingStrategy::kConsistentHash;
  }
  if (name == "modulo" || name == "mod" || name == "hash-mod") {
    return ShardingStrategy::kModulo;
  }
  return std::nullopt;
}

uint64_t ShardMap::HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

ShardMap::ShardMap(int num_shards, ShardingStrategy strategy,
                   int vnodes_per_shard)
    : strategy_(strategy), vnodes_(std::max(1, vnodes_per_shard)) {
  const int count = std::max(1, num_shards);
  alive_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    alive_.push_back(i);
  }
  next_shard_id_ = count;
  RebuildRingLocked();  // constructor: no concurrent access yet
}

void ShardMap::RebuildRingLocked() {
  ring_.clear();
  if (strategy_ != ShardingStrategy::kConsistentHash) {
    return;
  }
  ring_.reserve(alive_.size() * static_cast<size_t>(vnodes_));
  for (int shard : alive_) {
    for (int v = 0; v < vnodes_; ++v) {
      const uint64_t pos =
          Mix64((static_cast<uint64_t>(shard) << 32) | static_cast<uint64_t>(v));
      ring_.emplace_back(pos, shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ShardMap::OwnerOf(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto pin = pins_.find(name);
  if (pin != pins_.end()) {
    return pin->second;
  }
  if (alive_.empty()) {
    return 0;
  }
  const uint64_t h = HashName(name);
  if (strategy_ == ShardingStrategy::kModulo) {
    return alive_[h % alive_.size()];
  }
  // First vnode clockwise of the key's ring position (wrapping).
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::numeric_limits<int>::min()));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

int ShardMap::StrategyOwnerOf(const std::string& name) const {
  std::shared_lock lock(mu_);
  if (alive_.empty()) {
    return 0;
  }
  const uint64_t h = HashName(name);
  if (strategy_ == ShardingStrategy::kModulo) {
    return alive_[h % alive_.size()];
  }
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::numeric_limits<int>::min()));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

void ShardMap::Pin(const std::string& name, int shard) {
  std::unique_lock lock(mu_);
  pins_[name] = shard;
}

void ShardMap::Unpin(const std::string& name) {
  std::unique_lock lock(mu_);
  pins_.erase(name);
}

std::optional<int> ShardMap::PinnedOwner(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = pins_.find(name);
  if (it == pins_.end()) {
    return std::nullopt;
  }
  return it->second;
}

int ShardMap::AddShard() {
  std::unique_lock lock(mu_);
  const int id = next_shard_id_++;
  alive_.push_back(id);
  std::sort(alive_.begin(), alive_.end());
  RebuildRingLocked();
  return id;
}

void ShardMap::RemoveShard(int shard) {
  std::unique_lock lock(mu_);
  alive_.erase(std::remove(alive_.begin(), alive_.end(), shard), alive_.end());
  RebuildRingLocked();
}

bool ShardMap::IsAlive(int shard) const {
  std::shared_lock lock(mu_);
  return std::binary_search(alive_.begin(), alive_.end(), shard);
}

std::vector<int> ShardMap::AliveShards() const {
  std::shared_lock lock(mu_);
  return alive_;
}

int ShardMap::num_alive() const {
  std::shared_lock lock(mu_);
  return static_cast<int>(alive_.size());
}

int ShardMap::max_shard_id() const {
  std::shared_lock lock(mu_);
  return next_shard_id_;
}

}  // namespace musketeer
