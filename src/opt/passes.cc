#include "src/opt/passes.h"

#include <unordered_map>
#include <unordered_set>

namespace musketeer {

namespace {

// Name-linked operator list, easier to rewrite than the id-linked Dag.
struct LNode {
  OpKind kind;
  std::string output;
  std::vector<std::string> inputs;  // producing relation names
  OpParams params;
};

std::vector<LNode> ToLogical(const Dag& dag) {
  std::vector<LNode> out;
  out.reserve(dag.nodes().size());
  for (const OperatorNode& n : dag.nodes()) {
    LNode l;
    l.kind = n.kind;
    l.output = n.output;
    l.params = n.params;
    for (int in : n.inputs) {
      l.inputs.push_back(dag.node(in).output);
    }
    out.push_back(std::move(l));
  }
  return out;
}

StatusOr<std::unique_ptr<Dag>> FromLogical(const std::vector<LNode>& nodes) {
  auto dag = std::make_unique<Dag>();
  std::unordered_map<std::string, int> by_name;
  std::vector<bool> placed(nodes.size(), false);
  size_t remaining = nodes.size();
  while (remaining > 0) {
    bool progress = false;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (placed[i]) {
        continue;
      }
      bool ready = true;
      for (const std::string& in : nodes[i].inputs) {
        if (by_name.count(in) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      std::vector<int> ids;
      for (const std::string& in : nodes[i].inputs) {
        ids.push_back(by_name[in]);
      }
      int id = dag->AddNode(nodes[i].kind, nodes[i].output, std::move(ids),
                            nodes[i].params);
      by_name[nodes[i].output] = id;
      placed[i] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      return InternalError("optimizer produced an unresolvable operator list");
    }
  }
  return dag;
}

// Consumer counts per relation name.
std::unordered_map<std::string, int> CountConsumers(const std::vector<LNode>& nodes) {
  std::unordered_map<std::string, int> counts;
  for (const LNode& n : nodes) {
    for (const std::string& in : n.inputs) {
      ++counts[in];
    }
  }
  return counts;
}

int IndexOfProducer(const std::vector<LNode>& nodes, const std::string& name) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].output == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Schema of each relation name in the logical list.
StatusOr<std::unordered_map<std::string, Schema>> LogicalSchemas(
    const std::vector<LNode>& nodes, const SchemaMap& base) {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> dag, FromLogical(nodes));
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Schema> schemas, dag->InferSchemas(base));
  std::unordered_map<std::string, Schema> out;
  for (const OperatorNode& n : dag->nodes()) {
    out[n.output] = schemas[n.id];
  }
  return out;
}

// ---- Individual rewrites ---------------------------------------------------
// Each returns true if it changed the list (one rewrite per call; the driver
// loops to fixpoint).

// SELECT(SELECT(x)) -> SELECT(x) with AND-ed condition, when the inner select
// has no other consumers.
bool FuseAdjacentSelects(std::vector<LNode>* nodes) {
  auto consumers = CountConsumers(*nodes);
  for (size_t i = 0; i < nodes->size(); ++i) {
    LNode& outer = (*nodes)[i];
    if (outer.kind != OpKind::kSelect) {
      continue;
    }
    int inner_idx = IndexOfProducer(*nodes, outer.inputs[0]);
    if (inner_idx < 0) {
      continue;
    }
    LNode& inner = (*nodes)[inner_idx];
    if (inner.kind != OpKind::kSelect || consumers[inner.output] != 1) {
      continue;
    }
    ExprPtr combined =
        Expr::Binary(BinOp::kAnd, std::get<SelectParams>(inner.params).condition,
                     std::get<SelectParams>(outer.params).condition);
    outer.params = SelectParams{std::move(combined)};
    outer.inputs[0] = inner.inputs[0];
    nodes->erase(nodes->begin() + inner_idx);
    return true;
  }
  return false;
}

// PROJECT(PROJECT(x)) -> PROJECT(x), when the inner project is sole-consumed.
bool FuseAdjacentProjects(std::vector<LNode>* nodes) {
  auto consumers = CountConsumers(*nodes);
  for (size_t i = 0; i < nodes->size(); ++i) {
    LNode& outer = (*nodes)[i];
    if (outer.kind != OpKind::kProject) {
      continue;
    }
    int inner_idx = IndexOfProducer(*nodes, outer.inputs[0]);
    if (inner_idx < 0) {
      continue;
    }
    LNode& inner = (*nodes)[inner_idx];
    if (inner.kind != OpKind::kProject || consumers[inner.output] != 1) {
      continue;
    }
    // The outer column list is already expressed in the inner's output
    // namespace, which is a subset of the inner's input namespace — so it is
    // valid directly against the inner input.
    outer.inputs[0] = inner.inputs[0];
    nodes->erase(nodes->begin() + inner_idx);
    return true;
  }
  return false;
}

// SELECT over JOIN or UNION: push the filter toward the inputs.
//   y = SELECT c FROM (a JOIN b)  ->  y = (SELECT c FROM a) JOIN b
// when c only references columns of one side and the join is sole-consumed.
//   y = SELECT c FROM (a UNION b) ->  y = (SELECT c FROM a) UNION (SELECT c FROM b)
StatusOr<bool> PushDownSelections(std::vector<LNode>* nodes, const SchemaMap& base,
                                  int* uniq) {
  auto consumers = CountConsumers(*nodes);
  MUSKETEER_ASSIGN_OR_RETURN(auto schemas, LogicalSchemas(*nodes, base));
  for (size_t i = 0; i < nodes->size(); ++i) {
    LNode& sel = (*nodes)[i];
    if (sel.kind != OpKind::kSelect) {
      continue;
    }
    int prod_idx = IndexOfProducer(*nodes, sel.inputs[0]);
    if (prod_idx < 0) {
      continue;
    }
    LNode& prod = (*nodes)[prod_idx];
    if (consumers[prod.output] != 1) {
      continue;
    }
    const ExprPtr& cond = std::get<SelectParams>(sel.params).condition;

    if (prod.kind == OpKind::kJoin) {
      for (int side = 0; side < 2; ++side) {
        const Schema& in_schema = schemas.at(prod.inputs[side]);
        if (!cond->ResolvesAgainst(in_schema)) {
          continue;
        }
        // Insert a filter on this side; the join keeps the select's name so
        // downstream consumers are unaffected; the select node disappears.
        LNode filter;
        filter.kind = OpKind::kSelect;
        filter.output = prod.inputs[side] + "__pushed" + std::to_string((*uniq)++);
        filter.inputs = {prod.inputs[side]};
        filter.params = SelectParams{cond};

        prod.inputs[side] = filter.output;
        prod.output = sel.output;
        nodes->erase(nodes->begin() + i);
        nodes->push_back(std::move(filter));
        return true;
      }
      continue;
    }

    if (prod.kind == OpKind::kUnion) {
      LNode fa;
      fa.kind = OpKind::kSelect;
      fa.output = prod.inputs[0] + "__pushed" + std::to_string((*uniq)++);
      fa.inputs = {prod.inputs[0]};
      fa.params = SelectParams{cond};
      LNode fb;
      fb.kind = OpKind::kSelect;
      fb.output = prod.inputs[1] + "__pushed" + std::to_string((*uniq)++);
      fb.inputs = {prod.inputs[1]};
      fb.params = SelectParams{cond};

      prod.inputs[0] = fa.output;
      prod.inputs[1] = fb.output;
      prod.output = sel.output;
      nodes->erase(nodes->begin() + i);
      nodes->push_back(std::move(fa));
      nodes->push_back(std::move(fb));
      return true;
    }
  }
  return false;
}

// Removes operators that no workflow output depends on. INPUT nodes are kept
// only if consumed (unconsumed inputs were either user mistakes or left over
// from rewrites). Nodes that were sinks in the *original* DAG are the
// workflow outputs and always survive.
bool EliminateDead(std::vector<LNode>* nodes,
                   const std::unordered_set<std::string>& outputs) {
  std::unordered_set<std::string> live = outputs;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const LNode& n : *nodes) {
      if (live.count(n.output) == 0) {
        continue;
      }
      for (const std::string& in : n.inputs) {
        if (live.insert(in).second) {
          grew = true;
        }
      }
    }
  }
  for (size_t i = 0; i < nodes->size(); ++i) {
    if (live.count((*nodes)[i].output) == 0) {
      nodes->erase(nodes->begin() + i);
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<std::unique_ptr<Dag>> OptimizeDag(const Dag& dag, const SchemaMap& base,
                                           const OptimizeOptions& options,
                                           OptimizeStats* stats) {
  MUSKETEER_RETURN_IF_ERROR(dag.Validate());
  // Sanity: the input must type-check before we rely on schemas for rewrites.
  MUSKETEER_RETURN_IF_ERROR(dag.InferSchemas(base).status());

  std::vector<LNode> nodes = ToLogical(dag);
  std::unordered_set<std::string> outputs;
  for (int sink : dag.Sinks()) {
    outputs.insert(dag.node(sink).output);
  }

  OptimizeStats local;
  int uniq = 0;
  for (int round = 0; round < options.max_rewrite_rounds; ++round) {
    bool changed = false;
    if (options.fuse_adjacent_selects && FuseAdjacentSelects(&nodes)) {
      ++local.selects_fused;
      changed = true;
    }
    if (!changed && options.fuse_adjacent_projects && FuseAdjacentProjects(&nodes)) {
      ++local.projects_fused;
      changed = true;
    }
    if (!changed && options.push_down_selections) {
      MUSKETEER_ASSIGN_OR_RETURN(bool pushed, PushDownSelections(&nodes, base, &uniq));
      if (pushed) {
        ++local.selections_pushed;
        changed = true;
      }
    }
    if (!changed && options.eliminate_dead_operators &&
        EliminateDead(&nodes, outputs)) {
      ++local.dead_removed;
      changed = true;
    }
    if (!changed) {
      break;
    }
  }

  if (stats != nullptr) {
    *stats = local;
  }
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> out, FromLogical(nodes));
  MUSKETEER_RETURN_IF_ERROR(out->Validate());
  MUSKETEER_RETURN_IF_ERROR(out->InferSchemas(base).status());
  return out;
}

}  // namespace musketeer
