// IR optimization passes (§4.2 "Optimizing the IR").
//
// Musketeer applies standard query-rewriting optimizations at the
// intermediate level so every front-end and back-end benefits: selective
// operators are moved closer to the start of the workflow, adjacent filters
// and projections are fused, and operators that no longer contribute to a
// workflow output are dropped. All passes are semantics-preserving (verified
// by tests that compare reference-interpreter results before and after).

#ifndef MUSKETEER_SRC_OPT_PASSES_H_
#define MUSKETEER_SRC_OPT_PASSES_H_

#include <memory>

#include "src/ir/dag.h"

namespace musketeer {

struct OptimizeOptions {
  bool push_down_selections = true;
  bool fuse_adjacent_selects = true;
  bool fuse_adjacent_projects = true;
  bool eliminate_dead_operators = true;
  int max_rewrite_rounds = 64;
};

struct OptimizeStats {
  int selections_pushed = 0;
  int selects_fused = 0;
  int projects_fused = 0;
  int dead_removed = 0;
};

// Applies rewrite passes to fixpoint (bounded by max_rewrite_rounds) and
// returns the optimized DAG. `base` supplies schemas of the workflow's input
// relations, needed to decide rewrite applicability.
StatusOr<std::unique_ptr<Dag>> OptimizeDag(const Dag& dag, const SchemaMap& base,
                                           const OptimizeOptions& options = {},
                                           OptimizeStats* stats = nullptr);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_OPT_PASSES_H_
