// Idiom recognition (§4.3.1).
//
// Specialized back-ends (PowerGraph, GraphChi) can only run computations that
// fit their vertex-centric / GAS model. Musketeer therefore detects
// vertex-oriented graph processing in the IR — even when the workflow was
// written in a relational front-end — using the reverse of the way GraphX
// abstracts graph computation as data-flow operators:
//
//   The body of a WHILE loop must contain a JOIN whose two inputs represent
//   vertices and edges, followed (possibly through a MAP) by a GROUP BY that
//   groups by the vertex column. The JOIN is the "scatter"/message-send, the
//   GROUP BY the "gather"/message-receive, and remaining body operators form
//   the "apply" step.
//
// The detection is sound but not complete: a triangle-counting workflow that
// joins the edge relation with itself twice and filters (no WHILE) is not
// recognized, exactly as the paper's §8 discusses.

#ifndef MUSKETEER_SRC_OPT_IDIOM_H_
#define MUSKETEER_SRC_OPT_IDIOM_H_

#include <vector>

#include "src/ir/dag.h"

namespace musketeer {

struct GraphIdiomMatch {
  int while_node = -1;     // id of the WHILE operator in the outer DAG
  int scatter_join = -1;   // id of the message-send JOIN in the body
  int gather_group_by = -1;  // id of the message-receive GROUP BY in the body
  // True when the loop-carried vertex relation is one of the join inputs
  // (strict vertex-centric shape; required by PowerGraph/GraphChi).
  bool vertex_centric = false;
};

// Scans the DAG's WHILE operators for the graph-processing idiom.
std::vector<GraphIdiomMatch> DetectGraphIdioms(const Dag& dag);

// Convenience: true if `while_id` matches the idiom in its strict
// vertex-centric form (i.e., it can execute on a vertex-centric runtime).
bool IsGraphIdiom(const Dag& dag, int while_id);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_OPT_IDIOM_H_
