#include "src/opt/idiom.h"

namespace musketeer {

namespace {

// Follows single-consumer row-wise chains downstream from `id` and returns
// the first structural consumer, or -1. UNION is treated as part of the
// message stream: merging edge messages with vertex self-messages (the MIN/
// MAX-gather lowering) is still the scatter->gather shape.
int SkipRowwiseOps(const Dag& body, int id) {
  while (true) {
    std::vector<int> consumers = body.ConsumersOf(id);
    if (consumers.size() != 1) {
      return consumers.empty() ? -1 : consumers[0];
    }
    const OperatorNode& next = body.node(consumers[0]);
    if (next.kind == OpKind::kMap || next.kind == OpKind::kProject ||
        next.kind == OpKind::kSelect || next.kind == OpKind::kUnion) {
      id = next.id;
      continue;
    }
    return next.id;
  }
}

// True if node `id` in the body transitively reads the loop-carried input
// relation named `loop_input`.
bool ReadsLoopInput(const Dag& body, int id, const std::string& loop_input) {
  const OperatorNode& n = body.node(id);
  if (n.kind == OpKind::kInput) {
    return std::get<InputParams>(n.params).relation == loop_input;
  }
  for (int in : n.inputs) {
    if (ReadsLoopInput(body, in, loop_input)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<GraphIdiomMatch> DetectGraphIdioms(const Dag& dag) {
  std::vector<GraphIdiomMatch> matches;
  for (const OperatorNode& n : dag.nodes()) {
    if (n.kind != OpKind::kWhile) {
      continue;
    }
    const auto& wp = std::get<WhileParams>(n.params);
    const Dag& body = *wp.body;
    for (const OperatorNode& candidate : body.nodes()) {
      if (candidate.kind != OpKind::kJoin) {
        continue;
      }
      // The join must combine two distinct relations (vertices and edges).
      if (candidate.inputs[0] == candidate.inputs[1]) {
        continue;
      }
      // It must be followed — possibly through row-wise ops — by a GROUP BY.
      int downstream = SkipRowwiseOps(body, candidate.id);
      if (downstream < 0 || body.node(downstream).kind != OpKind::kGroupBy) {
        continue;
      }
      const auto& gp = std::get<GroupByParams>(body.node(downstream).params);
      if (gp.group_columns.size() != 1) {
        continue;  // vertex-keyed aggregation groups by exactly the vertex id
      }
      GraphIdiomMatch m;
      m.while_node = n.id;
      m.scatter_join = candidate.id;
      m.gather_group_by = downstream;
      // Strict vertex-centric form: *exactly one* join side carries the loop
      // state (the vertex relation); the other is the static edge set. A
      // join whose both sides derive from the loop (e.g. k-means' distance
      // join) is not a scatter and cannot run on a GAS engine.
      for (const LoopBinding& b : wp.bindings) {
        bool left = ReadsLoopInput(body, candidate.inputs[0], b.loop_input);
        bool right = ReadsLoopInput(body, candidate.inputs[1], b.loop_input);
        if (left != right) {
          m.vertex_centric = true;
          break;
        }
      }
      matches.push_back(m);
      break;  // one match per WHILE is enough
    }
  }
  return matches;
}

bool IsGraphIdiom(const Dag& dag, int while_id) {
  for (const GraphIdiomMatch& m : DetectGraphIdioms(dag)) {
    if (m.while_node == while_id && m.vertex_centric) {
      return true;
    }
  }
  return false;
}

}  // namespace musketeer
