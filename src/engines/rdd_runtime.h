// A partitioned, lineage-style dataset runtime — the execution substrate
// behind the Spark engine simulator (and Naiad's generic dataflow path).
//
// Relations live as P horizontal partitions. Narrow transformations
// (SELECT/PROJECT/MAP, UNION) run independently per partition; wide
// transformations (JOIN, GROUP BY, set operations) hash-repartition their
// inputs by key first — Spark's narrow/wide dependency distinction. Loops
// run as driver iterations over in-memory partitions (no materialization
// between trips). Results match the reference interpreter, identical up to
// floating-point summation order across partitions.

#ifndef MUSKETEER_SRC_ENGINES_RDD_RUNTIME_H_
#define MUSKETEER_SRC_ENGINES_RDD_RUNTIME_H_

#include "src/ir/eval.h"

namespace musketeer {

struct RddStats {
  int narrow_tasks = 0;      // per-partition task executions
  int wide_stages = 0;       // shuffles
  int64_t shuffled_records = 0;
};

struct RddOptions {
  int num_partitions = 4;
};

struct RddResult {
  TableMap relations;
  RddStats stats;
};

StatusOr<RddResult> ExecuteViaRdd(const Dag& dag, const TableMap& base,
                                  const RddOptions& options = {});

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_RDD_RUNTIME_H_
