// A Pregel-style vertex-centric runtime — the execution substrate behind
// PowerGraph, GraphChi and Naiad's GraphLINQ path.
//
// A WHILE loop that matched the graph idiom (§4.3.1) is converted from its
// dataflow form back into a vertex program: the scatter JOIN + message MAP
// become a per-edge message function, the GROUP BY becomes the gather
// aggregation, and the re-join + apply MAP become the per-vertex update.
// Execution then proceeds in supersteps over an adjacency structure with
// per-vertex message buckets, exactly like a GAS engine — no relational
// operators involved. Results match the dataflow interpretation (identical
// up to floating-point message-summation order; verified by the cross-engine
// equivalence tests).

#ifndef MUSKETEER_SRC_ENGINES_VERTEX_RUNTIME_H_
#define MUSKETEER_SRC_ENGINES_VERTEX_RUNTIME_H_

#include "src/ir/eval.h"

namespace musketeer {

struct VertexRuntimeStats {
  int supersteps = 0;
  int64_t messages_sent = 0;
  int64_t vertex_updates = 0;
};

struct VertexRuntimeResult {
  TableMap relations;
  VertexRuntimeStats stats;
};

// Executes `dag` with every graph-idiom WHILE run as a vertex program;
// non-loop operators (batch pre/post-processing) use the reference
// interpreter. Fails if a WHILE does not match the idiom.
StatusOr<VertexRuntimeResult> ExecuteViaVertexRuntime(const Dag& dag,
                                                      const TableMap& base);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_VERTEX_RUNTIME_H_
