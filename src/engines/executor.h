// Tracing DAG executor.
//
// Runs a job's sub-DAG on real data through the shared relational kernel —
// identical semantics for every engine — while recording, per executed
// operator, the nominal data volumes flowing through it (including one record
// per loop iteration for WHILE bodies). Engine simulators price these traces
// according to their own execution strategy.

#ifndef MUSKETEER_SRC_ENGINES_EXECUTOR_H_
#define MUSKETEER_SRC_ENGINES_EXECUTOR_H_

#include <vector>

#include "src/ir/eval.h"

namespace musketeer {

struct OpTrace {
  const OperatorNode* node = nullptr;  // identity within its owning DAG
  OpKind kind = OpKind::kInput;
  Bytes in_bytes = 0;   // nominal bytes entering the operator
  Bytes out_bytes = 0;  // nominal bytes produced
  int iteration = -1;   // loop trip index; -1 for top-level operators
};

struct ExecTrace {
  // Every relation produced (top-level names; loop internals excluded).
  TableMap relations;
  std::vector<OpTrace> ops;
  // Total number of loop iterations executed across all WHILE nodes.
  int total_iterations = 0;
  // Nominal bytes of loop-carried state summed over all iterations (what a
  // materializing engine writes+reads between iterations).
  Bytes loop_state_bytes = 0;
};

StatusOr<ExecTrace> TraceExecuteDag(const Dag& dag, const TableMap& base);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_EXECUTOR_H_
