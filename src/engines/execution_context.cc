#include "src/engines/execution_context.h"

#include <algorithm>

#include "src/base/rng.h"

namespace musketeer {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvMix(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h = (h ^ c) * kFnvPrime;
  }
  h = (h ^ 0x1f) * kFnvPrime;  // separator so ("ab","c") != ("a","bc")
  return h;
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace

bool FaultInjector::ShouldFail(const std::string& workflow,
                               const std::string& job_signature,
                               int attempt) const {
  if (rate_ <= 0.0) {
    return false;
  }
  uint64_t h = FnvMix(kFnvOffset, seed_);
  h = FnvMix(h, workflow);
  h = FnvMix(h, job_signature);
  h = FnvMix(h, static_cast<uint64_t>(attempt));
  Rng rng(h);
  return rng.NextDouble() < rate_;
}

std::chrono::milliseconds RetryPolicy::BackoffFor(int attempt,
                                                  const std::string& key) const {
  if (attempt <= 1) {
    return std::chrono::milliseconds{0};
  }
  double backoff = static_cast<double>(initial_backoff.count());
  for (int i = 2; i < attempt; ++i) {
    backoff *= multiplier;
  }
  backoff = std::min(backoff, static_cast<double>(max_backoff.count()));
  if (jitter > 0.0) {
    uint64_t h = FnvMix(kFnvOffset, backoff_seed);
    h = FnvMix(h, key);
    h = FnvMix(h, static_cast<uint64_t>(attempt));
    Rng rng(h);
    backoff *= 1.0 - jitter * rng.NextDouble();
  }
  return std::chrono::milliseconds{static_cast<int64_t>(backoff)};
}

Status ExecutionContext::CheckCancelled() const {
  if (cancel.cancel_requested()) {
    return CancelledError("workflow " + workflow_id + " cancelled");
  }
  return OkStatus();
}

Status ExecutionContext::CheckDeadline() const {
  if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {
    return DeadlineExceededError("workflow " + workflow_id +
                                 " exceeded its deadline");
  }
  return OkStatus();
}

Status ExecutionContext::Check() const {
  MUSKETEER_RETURN_IF_ERROR(CheckCancelled());
  return CheckDeadline();
}

bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kAborted ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace musketeer
