// A MapReduce runtime, built from scratch.
//
// This is the execution substrate behind the Hadoop and Metis engine
// simulators: job sub-DAGs are compiled into a sequence of MapReduce stages
// (one per key-repartitioning operator, §4.3.2) and executed the way a real
// MapReduce system does — input splits feed map tasks, map output is
// partitioned by key hash across reducers, optionally pre-aggregated by a
// combiner when the aggregation is associative, sorted/grouped per reducer,
// and reduced. Row-wise operators fuse into the surrounding map phases.
//
// Results match the reference interpreter (identical up to floating-point
// summation order — combiners and partitioned reduces legitimately reorder
// double addition; verified by the cross-engine equivalence tests). The
// returned statistics expose the volumes a real deployment would shuffle.

#ifndef MUSKETEER_SRC_ENGINES_MAPREDUCE_RUNTIME_H_
#define MUSKETEER_SRC_ENGINES_MAPREDUCE_RUNTIME_H_

#include "src/ir/eval.h"

namespace musketeer {

struct MapReduceStats {
  int stages = 0;            // MapReduce jobs launched (map-only ones too)
  int map_tasks = 0;         // total map tasks across stages
  int reduce_tasks = 0;      // total reduce tasks across stages
  int64_t map_output_records = 0;      // records emitted by all mappers
  int64_t combined_output_records = 0; // records after the combiner pass
  int64_t shuffled_records = 0;        // records crossing the shuffle
};

struct MapReduceOptions {
  int num_mappers = 4;   // input splits per stage
  int num_reducers = 3;  // shuffle partitions
  bool use_combiners = true;  // pre-aggregate associative aggregations
};

struct MapReduceResult {
  TableMap relations;  // every relation the DAG defines
  MapReduceStats stats;
};

// Executes `dag` (including WHILE loops, one body pass per trip) against
// `base` through the MapReduce runtime.
StatusOr<MapReduceResult> ExecuteViaMapReduce(const Dag& dag, const TableMap& base,
                                              const MapReduceOptions& options = {});

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_MAPREDUCE_RUNTIME_H_
