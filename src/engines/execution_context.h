// ExecutionContext: the execution-boundary contract for fault-tolerant runs.
//
// `Musketeer::Execute` builds one ExecutionContext per run and passes it
// through the per-job dispatch into ExecuteJob. It carries:
//
//   - a deadline (absolute steady_clock point) and a cooperative CancelToken,
//     both checked between pipeline stages, between jobs, and between kernel
//     batches (operator boundaries and substrate stage/iteration loops) via
//     the thread-local ScopedInterrupt registration;
//   - a seeded deterministic FaultInjector: whether attempt k of job J in
//     workflow W fails is a pure function of (seed, W, J-signature, k), so a
//     given seed reproduces the exact same fault sequence across runs;
//   - a RetryPolicy: max attempts per engine and exponential backoff with
//     deterministic jitter (seeded from src/base/rng.h, keyed like faults).
//
// On retry exhaustion the dispatcher in src/core/musketeer.cc performs
// cross-engine failover: it re-asks the cost model for the next-cheapest
// engine able to run the job's sub-DAG. Because ExecuteJob commits the shared
// relational kernel's outputs (not the substrate's — see engine.cc), failover
// results are bit-identical (Table::Identical) to the fault-free run.

#ifndef MUSKETEER_SRC_ENGINES_EXECUTION_CONTEXT_H_
#define MUSKETEER_SRC_ENGINES_EXECUTION_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/base/cancel.h"
#include "src/base/status.h"

namespace musketeer {

// Deterministic fault injection. rate == 0 (the default) never fails and
// costs one branch per query. The decision for a given (workflow, job
// signature, attempt) triple is a pure function of the seed: the triple is
// hashed (FNV-1a) into a SplitMix64 stream whose first draw is compared
// against the rate.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(double rate, uint64_t seed) : rate_(rate), seed_(seed) {}

  bool enabled() const { return rate_ > 0.0; }
  double rate() const { return rate_; }
  uint64_t seed() const { return seed_; }

  // True if attempt `attempt` of job `job_signature` in `workflow` should
  // fail with an injected kUnavailable. Deterministic across runs and across
  // threads: no internal state advances.
  bool ShouldFail(const std::string& workflow, const std::string& job_signature,
                  int attempt) const;

 private:
  double rate_ = 0.0;
  uint64_t seed_ = 0;
};

// Retry/backoff policy for one job attempt loop. max_attempts counts the
// first try: max_attempts == 1 means no retries. Backoff for attempt k
// (1-based; no backoff before attempt 1) is
//   min(initial_backoff * multiplier^(k-1), max_backoff) * (1 - jitter * u)
// with u drawn deterministically from (backoff_seed, key, k).
struct RetryPolicy {
  int max_attempts = 1;
  std::chrono::milliseconds initial_backoff{5};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{250};
  double jitter = 0.5;  // in [0, 1]: fraction of the backoff randomized away
  uint64_t backoff_seed = 0;
  // After exhausting max_attempts on an engine, re-ask the cost model for the
  // next-cheapest engine that can run the job's sub-DAG.
  bool enable_failover = true;

  std::chrono::milliseconds BackoffFor(int attempt, const std::string& key) const;
};

// Everything ExecuteJob needs to know about the run it serves. Passed by
// const reference; the attempt number is the only field the dispatcher
// varies between calls for the same job.
struct ExecutionContext {
  std::string workflow_id;
  int attempt = 1;  // 1-based, monotonically increasing across failover
  // Shard identity of the executing service (-1 = unsharded). Informational
  // for logs/traces only — deliberately NOT part of the fault injector's
  // (workflow, job@engine, attempt) signature, so a run replays the same
  // fault sequence at any shard count and across shard failovers.
  int shard = -1;
  CancelToken cancel;
  DeadlinePoint deadline;  // nullopt = none
  FaultInjector faults;
  RetryPolicy retry;

  // Checkpoint helpers; Check() is the common "cancelled or past deadline?"
  // probe used between pipeline stages and jobs.
  Status CheckCancelled() const;
  Status CheckDeadline() const;
  Status Check() const;
};

// True for codes the attempt loop may retry (transient substrate failures):
// kUnavailable, kAborted, kResourceExhausted. Cancellation, deadline
// expiry, and genuine plan/data errors are terminal.
bool IsRetryable(StatusCode code);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_EXECUTION_CONTEXT_H_
