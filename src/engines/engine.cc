#include "src/engines/engine.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "src/base/parallel.h"
#include "src/base/strings.h"
#include "src/engines/executor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/engines/mapreduce_runtime.h"
#include "src/engines/rdd_runtime.h"
#include "src/engines/timely_runtime.h"
#include "src/engines/vertex_runtime.h"

namespace musketeer {

namespace {

// Joins whose downstream aggregation (possibly through row-wise reshaping
// operators — the NetFlix join->map->group-by pattern) keys by something
// other than the join key: Musketeer's simple look-ahead type inference
// cannot fuse the re-keying map into the join, costing one extra pass over
// the data per job (§6.4: "an extra pass"); the first qualifying join in
// plan order pays it.
void CollectTypeInferenceMisses(const Dag& dag,
                                std::unordered_set<const OperatorNode*>* out) {
  for (const OperatorNode& n : dag.nodes()) {
    if (!out->empty()) {
      return;
    }
    if (n.kind == OpKind::kWhile) {
      CollectTypeInferenceMisses(*std::get<WhileParams>(n.params).body, out);
      continue;
    }
    if (n.kind != OpKind::kJoin) {
      continue;
    }
    const auto& jp = std::get<JoinParams>(n.params);
    // Walk forward through single-consumer row-wise chains.
    int cur = n.id;
    bool reshaped = false;
    while (true) {
      std::vector<int> consumers = dag.ConsumersOf(cur);
      if (consumers.size() != 1) {
        break;
      }
      const OperatorNode& consumer = dag.node(consumers[0]);
      if (IsRowwiseOp(consumer.kind)) {
        reshaped = true;
        cur = consumer.id;
        continue;
      }
      if (consumer.kind == OpKind::kGroupBy) {
        const auto& gp = std::get<GroupByParams>(consumer.params);
        bool same_key = !reshaped && gp.group_columns.size() == 1 &&
                        gp.group_columns[0] == jp.left_key;
        if (!same_key) {
          out->insert(&n);
        }
      } else if (consumer.kind == OpKind::kAgg) {
        out->insert(&n);
      }
      break;
    }
  }
}

int ShufflesPerIteration(const ExecTrace& trace) {
  int count = 0;
  for (const OpTrace& op : trace.ops) {
    if (op.iteration == 0 && IsShuffleOp(op.kind)) {
      ++count;
    }
  }
  return count;
}

// Aborts every output channel that has not been closed when the job unwinds
// on an error path, so pipelined consumers observe the failure instead of
// blocking forever. Abort after a clean Close is a no-op, which makes the
// guard safe to leave armed on the success path too.
struct ChannelAbortGuard {
  const JobStreamIo* stream;
  std::string job;
  ~ChannelAbortGuard() {
    if (stream == nullptr) {
      return;
    }
    for (const auto& [relation, channel] : stream->outputs) {
      channel->Abort(UnavailableError("producer '" + job +
                                      "' failed before finishing stream of '" +
                                      relation + "'"));
    }
  }
};

}  // namespace

StatusOr<JobResult> ExecuteJob(const JobPlan& plan, const ClusterConfig& cluster,
                               Dfs* dfs, const ExecutionContext& ctx,
                               const JobStreamIo* stream) {
  Span span("job:" + plan.name, "job");
  if (span.active()) {
    span.SetAttr("engine", EngineKindName(plan.engine));
    span.SetAttr("inputs", std::to_string(plan.inputs.size()));
    span.SetAttr("attempt", std::to_string(ctx.attempt));
  }
  static Counter& jobs =
      MetricsRegistry::Global().counter("musketeer.engine.jobs");
  static Counter& faults_injected =
      MetricsRegistry::Global().counter("musketeer.engine.faults_injected");
  static Histogram& job_wall = MetricsRegistry::Global().histogram(
      "musketeer.engine.job_wall_seconds");
  jobs.Increment();

  // Register the context's token/deadline as this thread's interrupt state so
  // the interpreter's operator loop and the substrates' stage/iteration loops
  // (which cannot take a context parameter) observe them via CheckInterrupt.
  ScopedInterrupt interrupt(ctx.cancel, ctx.deadline);
  ChannelAbortGuard abort_guard{stream, plan.name};
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // Seeded fault injection: whether this (workflow, job@engine, attempt)
  // fails is a pure function of the injector's seed, so fault sweeps are
  // reproducible. The fault models a substrate that died before committing
  // anything — retryable kUnavailable. Checked before the input pull so a
  // doomed pipelined consumer never blocks on its channels first (read
  // accounting only fires on success, so the ordering is observation-free).
  const std::string job_signature =
      plan.name + "@" + EngineKindName(plan.engine);
  if (ctx.faults.ShouldFail(ctx.workflow_id, job_signature, ctx.attempt)) {
    faults_injected.Increment();
    return UnavailableError("injected fault: " + job_signature + " attempt " +
                            std::to_string(ctx.attempt));
  }

  // 1. Pull the job's inputs from the DFS — except inputs wired to a
  // RelationChannel, which are assembled from the producer's streamed
  // batches (bit-identical to the committed relation by construction) and
  // never touch storage or the pull accounting. Inputs another shard owns
  // are a cross-shard fetch (IsLocal answers from the relation-location
  // directory; always local on an unsharded Dfs) and are accounted
  // separately so the locality cost model can calibrate against what jobs
  // actually moved.
  TableMap base;
  Bytes pull_bytes = 0;
  Bytes pull_remote_bytes = 0;
  uint64_t stream_batches_in = 0;
  Bytes stream_bytes_in = 0;
  for (const std::string& name : plan.inputs) {
    if (stream != nullptr) {
      auto channel_it = stream->inputs.find(name);
      if (channel_it != stream->inputs.end()) {
        MUSKETEER_ASSIGN_OR_RETURN(
            AssembledTable in,
            AssembleFromChannel(channel_it->second, ctx.cancel, ctx.deadline));
        stream_batches_in += in.counts.batches;
        stream_bytes_in += in.counts.bytes;
        base[name] = std::make_shared<const Table>(std::move(in.table));
        continue;
      }
    }
    const bool local = dfs->IsLocal(name);
    MUSKETEER_ASSIGN_OR_RETURN(TablePtr table, dfs->Get(name));
    base[name] = table;
    pull_bytes += table->nominal_bytes();
    if (!local) {
      pull_remote_bytes += table->nominal_bytes();
    }
  }

  // Data-plane parallelism fidelity: engines the paper models as
  // single-threaded degrade to one thread for the whole job — SerialC's
  // generated C program is sequential by construction, and a
  // single_threaded_io quirk (native Lindi, §2.1) pins the job's I/O path to
  // one thread. Everything else runs at the session's thread budget.
  std::optional<ScopedParallelThreads> forced_serial;
  if (plan.engine == EngineKind::kSerialC || plan.quirks.single_threaded_io) {
    forced_serial.emplace(1);
  }

  // 2. Execute the sub-DAG on real data, tracing volumes. The trace drives
  // the performance model; the *semantics* run through each engine's own
  // substrate below (MapReduce, partitioned RDDs, or the vertex runtime).
  MUSKETEER_ASSIGN_OR_RETURN(ExecTrace trace, TraceExecuteDag(*plan.dag, base));

  // Streamed outputs leave NOW — the kernel's tables are the exact bytes the
  // barrier path commits below, so consumers can start while this job still
  // has its substrate, verification and commit ahead of it. That overlap is
  // the pipelined data plane's entire win.
  uint64_t stream_batches_out = 0;
  Bytes stream_bytes_out = 0;
  if (stream != nullptr) {
    for (const auto& [name, channel] : stream->outputs) {
      auto it = trace.relations.find(name);
      if (it == trace.relations.end()) {
        return InternalError("job did not produce streamed output '" + name +
                             "'");
      }
      MUSKETEER_ASSIGN_OR_RETURN(
          StreamCounts pushed,
          StreamTable(*it->second, stream->batch_rows, channel, ctx.cancel,
                      ctx.deadline));
      stream_batches_out += pushed.batches;
      stream_bytes_out += pushed.bytes;
    }
  }

  // Engine substrates: compute the job's results the way the engine would.
  // All substrates match the tracing interpreter up to floating-point
  // summation order (verified by the cross-engine equivalence tests); SerialC
  // executes the interpreter directly, which is exactly what single-threaded
  // C code does.
  TableMap engine_relations = trace.relations;
  switch (plan.engine) {
    case EngineKind::kHadoop: {
      MapReduceOptions mr;
      mr.num_mappers = 8;
      mr.num_reducers = 4;
      MUSKETEER_ASSIGN_OR_RETURN(MapReduceResult sub,
                                 ExecuteViaMapReduce(*plan.dag, base, mr));
      engine_relations = std::move(sub.relations);
      break;
    }
    case EngineKind::kMetis: {
      MapReduceOptions mr;
      mr.num_mappers = 4;  // one per core, single machine
      mr.num_reducers = 4;
      MUSKETEER_ASSIGN_OR_RETURN(MapReduceResult sub,
                                 ExecuteViaMapReduce(*plan.dag, base, mr));
      engine_relations = std::move(sub.relations);
      break;
    }
    case EngineKind::kSpark: {
      MUSKETEER_ASSIGN_OR_RETURN(RddResult sub,
                                 ExecuteViaRdd(*plan.dag, base, {.num_partitions = 4}));
      engine_relations = std::move(sub.relations);
      break;
    }
    case EngineKind::kNaiad: {
      if (plan.graph_path) {
        MUSKETEER_ASSIGN_OR_RETURN(VertexRuntimeResult sub,
                                   ExecuteViaVertexRuntime(*plan.dag, base));
        engine_relations = std::move(sub.relations);
      } else {
        MUSKETEER_ASSIGN_OR_RETURN(TimelyResult sub,
                                   ExecuteViaTimely(*plan.dag, base));
        engine_relations = std::move(sub.relations);
      }
      break;
    }
    case EngineKind::kPowerGraph:
    case EngineKind::kGraphChi: {
      MUSKETEER_ASSIGN_OR_RETURN(VertexRuntimeResult sub,
                                 ExecuteViaVertexRuntime(*plan.dag, base));
      engine_relations = std::move(sub.relations);
      break;
    }
    case EngineKind::kSerialC:
      break;  // the interpreter IS the serial implementation
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  std::unordered_set<const OperatorNode*> misses;
  if (plan.quirks.model_type_inference_miss) {
    CollectTypeInferenceMisses(*plan.dag, &misses);
  }

  // 3. Assemble the pricing shape.
  JobShape shape;
  shape.pull_bytes = pull_bytes;
  shape.process_efficiency = plan.quirks.process_efficiency;
  shape.single_threaded_io = plan.quirks.single_threaded_io;
  if (RatesFor(plan.engine).load_mbps > 0) {
    shape.load_bytes = pull_bytes;
  }

  Bytes push_bytes = 0;
  for (const std::string& name : plan.outputs) {
    auto it = trace.relations.find(name);
    if (it == trace.relations.end()) {
      return InternalError("job did not produce declared output '" + name + "'");
    }
    // Streamed outputs hand off in memory: the consumer never pulls them
    // from the DFS, so the simulated push charge is not paid (the commit
    // below still happens — fallback, sinks and incremental reuse read it).
    if (stream != nullptr && stream->outputs.count(name) > 0) {
      continue;
    }
    push_bytes += it->second->nominal_bytes();
  }
  shape.push_bytes = push_bytes;

  if (plan.while_mode == WhileExec::kVertexRuntime) {
    // Vertex-centric runtimes do not execute the loop body as dataflow
    // operators: per superstep they stream the edges once through the
    // scatter/gather program (one graph-rate pass) and pay network for the
    // gather communication; the apply step is local and free.
    int cur_iter = -2;
    bool charged_scan = false;
    bool charged_gather = false;
    for (const OpTrace& op : trace.ops) {
      if (op.iteration < 0) {
        PricedOp priced;
        priced.in_bytes = op.in_bytes;
        priced.shuffle = IsShuffleOp(op.kind);
        priced.charge_process = !plan.quirks.shared_scans || !IsRowwiseOp(op.kind);
        shape.ops.push_back(priced);
        continue;
      }
      if (op.iteration != cur_iter) {
        cur_iter = op.iteration;
        charged_scan = false;
        charged_gather = false;
      }
      if (op.kind == OpKind::kJoin && !charged_scan) {
        charged_scan = true;
        shape.ops.push_back(PricedOp{.in_bytes = op.in_bytes,
                                     .shuffle = false,
                                     .charge_process = true,
                                     .graph_path = true});
      } else if ((op.kind == OpKind::kGroupBy || op.kind == OpKind::kAgg) &&
                 !charged_gather) {
        charged_gather = true;
        shape.ops.push_back(PricedOp{.in_bytes = op.in_bytes,
                                     .shuffle = true,
                                     .charge_process = false,
                                     .graph_path = true});
      }
      // All other body operators are the local apply step: free.
    }
  } else {
    for (const OpTrace& op : trace.ops) {
      PricedOp priced;
      priced.in_bytes = op.in_bytes;
      priced.shuffle = IsShuffleOp(op.kind);
      priced.charge_process = !plan.quirks.shared_scans || !IsRowwiseOp(op.kind);
      priced.single_node = plan.quirks.single_node_group_by &&
                           (op.kind == OpKind::kGroupBy || op.kind == OpKind::kAgg);
      shape.ops.push_back(priced);
      if (misses.count(op.node) > 0) {
        // Type-inference miss: an extra re-keying pass over the join output.
        shape.ops.push_back(PricedOp{.in_bytes = op.out_bytes,
                                     .shuffle = false,
                                     .charge_process = true});
      }
    }
  }

  // GraphChi streams from memory instead of disk when the graph fits.
  if (plan.engine == EngineKind::kGraphChi &&
      shape.pull_bytes < kGraphChiInMemoryBytes) {
    shape.process_efficiency *= kGraphChiInMemoryBoost;
  }

  // 4. Loop execution strategy.
  switch (plan.while_mode) {
    case WhileExec::kNone:
      shape.job_count = 1;
      break;
    case WhileExec::kNativeLoop:
    case WhileExec::kVertexRuntime:
      shape.job_count = 1;
      shape.supersteps = trace.total_iterations;
      break;
    case WhileExec::kPerIterationJobs: {
      // Every shuffle inside the loop body starts a fresh MapReduce job, and
      // each job's output is materialized to the DFS and re-read by the next
      // one — the core structural disadvantage of MR for iteration.
      int jobs_per_iter = std::max(1, ShufflesPerIteration(trace));
      shape.job_count = std::max(1, jobs_per_iter * trace.total_iterations);
      Bytes materialized = 0;
      for (const OpTrace& op : trace.ops) {
        if (op.iteration >= 0 && IsShuffleOp(op.kind)) {
          materialized += op.out_bytes;
        }
      }
      shape.pull_bytes += materialized;
      shape.push_bytes += materialized;
      break;
    }
  }

  shape.job_count += plan.quirks.extra_jobs;

  // 5. Price and commit results to the DFS.
  JobResult result;
  result.makespan = PriceJob(plan.engine, cluster, shape);
  result.bytes_pulled = shape.pull_bytes;
  result.bytes_pulled_remote = pull_remote_bytes;
  result.bytes_pushed = shape.push_bytes;
  result.internal_jobs = shape.job_count;
  result.supersteps = shape.supersteps;
  result.stream_batches_in = stream_batches_in;
  result.stream_batches_out = stream_batches_out;
  result.stream_bytes_in = stream_bytes_in;
  result.stream_bytes_out = stream_bytes_out;

  // Verify the substrate against the shared kernel, then commit the
  // *kernel's* tables. Substrates may legitimately differ from the kernel in
  // row order and floating-point summation order (combiners, partitioned
  // reduces), so the check is SameContent; anything beyond that is a
  // detected execution fault — retryable, so the dispatcher can re-run or
  // fail over. Committing the kernel's bits makes every engine's committed
  // output identical, which is what lets failover guarantee
  // Table::Identical results.
  std::vector<std::pair<std::string, TablePtr>> to_commit;
  to_commit.reserve(plan.outputs.size());
  for (const std::string& name : plan.outputs) {
    auto it = engine_relations.find(name);
    if (it == engine_relations.end()) {
      return AbortedError("engine substrate did not produce '" + name + "'");
    }
    auto kernel_it = trace.relations.find(name);
    if (kernel_it == trace.relations.end()) {
      return InternalError("job did not produce declared output '" + name + "'");
    }
    if (!Table::SameContent(*kernel_it->second, *it->second)) {
      return AbortedError("substrate output '" + name + "' diverged from the "
                          "shared kernel on " + job_signature);
    }
    to_commit.emplace_back(name, kernel_it->second);
  }
  // Every output verified; commit atomically so a failed attempt never
  // leaves partial outputs behind for a retry to trip over.
  for (auto& [name, table] : to_commit) {
    dfs->Put(name, table);
  }
  // Local/remote read split: the declared inputs that came from another
  // shard are remote; everything else (including loop-materialized
  // intermediate bytes, which never leave the executing shard) is local.
  dfs->RecordRead(shape.pull_bytes - pull_remote_bytes);
  if (pull_remote_bytes > 0) {
    dfs->RecordRemoteRead(pull_remote_bytes);
  }
  dfs->RecordWrite(shape.push_bytes);

  // Harvest observed sizes: top-level operators plus the final iteration of
  // loop bodies (the steady state the cost model should predict).
  int last_iteration = -1;
  for (const OpTrace& op : trace.ops) {
    last_iteration = std::max(last_iteration, op.iteration);
  }
  for (const OpTrace& op : trace.ops) {
    if (op.iteration == -1 || op.iteration == last_iteration) {
      result.observed_sizes.emplace_back(op.node->output, op.out_bytes);
    }
  }

  std::ostringstream detail;
  detail << EngineKindName(plan.engine) << " job '" << plan.name << "': "
         << HumanSeconds(result.makespan) << ", pull " << HumanBytes(pull_bytes)
         << ", push " << HumanBytes(push_bytes) << ", " << shape.job_count
         << " engine job(s)";
  if (pull_remote_bytes > 0) {
    detail << ", " << HumanBytes(pull_remote_bytes) << " fetched cross-shard";
  }
  if (stream_batches_in > 0 || stream_batches_out > 0) {
    detail << ", streamed in " << stream_batches_in << " batch(es)/"
           << HumanBytes(stream_bytes_in) << ", out " << stream_batches_out
           << " batch(es)/" << HumanBytes(stream_bytes_out);
  }
  if (ctx.shard >= 0) {
    detail << " [shard " << ctx.shard << "]";
  }
  if (shape.supersteps > 0) {
    detail << ", " << shape.supersteps << " supersteps";
  }
  result.detail = detail.str();
  result.wall_seconds = span.elapsed_seconds();
  job_wall.Observe(result.wall_seconds);
  return result;
}

}  // namespace musketeer
