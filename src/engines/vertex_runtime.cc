#include "src/engines/vertex_runtime.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "src/base/cancel.h"
#include "src/base/parallel.h"
#include "src/opt/idiom.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

struct ValueHash {
  size_t operator()(const Value& v) const { return HashValue(v); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return ValuesEqual(a, b);
  }
};

// Compiled MAP: output schema plus per-column projectors with the same type
// coercion the reference interpreter applies.
struct CompiledMap {
  Schema schema;
  std::vector<RowProjector> projectors;
};

StatusOr<CompiledMap> CompileMap(const MapParams& params, const Schema& in) {
  CompiledMap out;
  for (const NamedExpr& ne : params.outputs) {
    MUSKETEER_ASSIGN_OR_RETURN(FieldType t, ne.expr->InferType(in));
    out.schema.AddField({ne.name, t});
    MUSKETEER_ASSIGN_OR_RETURN(RowProjector proj, ne.expr->Compile(in));
    if (t == FieldType::kDouble) {
      out.projectors.emplace_back(
          [proj](const Row& row) -> Value { return AsDouble(proj(row)); });
    } else {
      out.projectors.push_back(proj);
    }
  }
  return out;
}

// Builds a join output row with the kernel's (key, left-rest, right-rest)
// layout.
Row JoinRow(const Row& lrow, int lkey, const Row& rrow, int rkey) {
  Row row;
  row.reserve(lrow.size() + rrow.size() - 1);
  row.push_back(lrow[lkey]);
  for (size_t c = 0; c < lrow.size(); ++c) {
    if (static_cast<int>(c) != lkey) {
      row.push_back(lrow[c]);
    }
  }
  for (size_t c = 0; c < rrow.size(); ++c) {
    if (static_cast<int>(c) != rkey) {
      row.push_back(rrow[c]);
    }
  }
  return row;
}

// The vertex program extracted from a graph-idiom WHILE body.
struct VertexProgram {
  // Scatter: JOIN(edge-side, vertex-side) + message MAP.
  const OperatorNode* scatter_join = nullptr;
  bool vertex_on_left = false;  // which join input carries the loop state
  int edge_key = 0;             // key column in the edge relation
  int vertex_key = 0;           // key (id) column in the vertex relation
  CompiledMap message;          // (destination id, message value)
  std::optional<CompiledMap> self_message;  // MIN/MAX gathers (SSSP)
  // Gather.
  AggFn gather = AggFn::kSum;
  FieldType msg_type = FieldType::kDouble;
  // Apply: JOIN(vertex, gathered) + update MAP.
  bool rejoin_vertex_on_left = true;
  CompiledMap apply;
  // Edge relation name (loop-invariant input).
  std::string edge_relation;
};

// Walks the idiom body and compiles it into a VertexProgram. The body must
// have the shape idiom recognition accepted: scatter JOIN -> message MAP
// [-> UNION with a vertex self-message MAP] -> GROUP BY -> rejoin JOIN ->
// apply MAP.
StatusOr<VertexProgram> ExtractProgram(const Dag& body,
                                       const std::string& loop_input,
                                       const SchemaMap& body_schemas_base) {
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Schema> schemas,
                             body.InferSchemas(body_schemas_base));

  auto reads_loop = [&](int id, auto&& self) -> bool {
    const OperatorNode& n = body.node(id);
    if (n.kind == OpKind::kInput) {
      return std::get<InputParams>(n.params).relation == loop_input;
    }
    for (int in : n.inputs) {
      if (self(in, self)) {
        return true;
      }
    }
    return false;
  };

  VertexProgram program;

  // 1. The scatter join: a JOIN with exactly one loop-state side.
  const OperatorNode* scatter = nullptr;
  for (const OperatorNode& n : body.nodes()) {
    if (n.kind != OpKind::kJoin) {
      continue;
    }
    bool left_loop = reads_loop(n.inputs[0], reads_loop);
    bool right_loop = reads_loop(n.inputs[1], reads_loop);
    if (left_loop != right_loop) {
      scatter = &n;
      program.vertex_on_left = left_loop;
      break;
    }
  }
  if (scatter == nullptr) {
    return FailedPreconditionError("vertex runtime: no scatter join in loop body");
  }
  program.scatter_join = scatter;
  {
    const auto& jp = std::get<JoinParams>(scatter->params);
    int vin = scatter->inputs[program.vertex_on_left ? 0 : 1];
    int ein = scatter->inputs[program.vertex_on_left ? 1 : 0];
    const Schema& vschema = schemas[vin];
    const Schema& eschema = schemas[ein];
    const std::string& vkey = program.vertex_on_left ? jp.left_key : jp.right_key;
    const std::string& ekey = program.vertex_on_left ? jp.right_key : jp.left_key;
    auto vidx = vschema.IndexOf(vkey);
    auto eidx = eschema.IndexOf(ekey);
    if (!vidx.has_value() || !eidx.has_value()) {
      return FailedPreconditionError("vertex runtime: join keys unresolved");
    }
    program.vertex_key = *vidx;
    program.edge_key = *eidx;
    // Edge relation name: the INPUT the edge side reads.
    const OperatorNode& edge_node = body.node(ein);
    if (edge_node.kind != OpKind::kInput) {
      return FailedPreconditionError(
          "vertex runtime: edge side must be a direct input");
    }
    program.edge_relation = std::get<InputParams>(edge_node.params).relation;
  }

  // 2. Message MAP directly consuming the join.
  std::vector<int> consumers = body.ConsumersOf(scatter->id);
  if (consumers.size() != 1 || body.node(consumers[0]).kind != OpKind::kMap) {
    return FailedPreconditionError("vertex runtime: missing message map");
  }
  const OperatorNode& msg_map = body.node(consumers[0]);
  {
    const auto& mp = std::get<MapParams>(msg_map.params);
    if (mp.outputs.size() != 2) {
      return FailedPreconditionError("vertex runtime: message map must be "
                                     "(destination, message)");
    }
    MUSKETEER_ASSIGN_OR_RETURN(program.message,
                               CompileMap(mp, schemas[scatter->id]));
  }

  // 3. Optional UNION with vertex self-messages, then the gather GROUP BY.
  int cursor = msg_map.id;
  consumers = body.ConsumersOf(cursor);
  if (consumers.size() == 1 && body.node(consumers[0]).kind == OpKind::kUnion) {
    const OperatorNode& u = body.node(consumers[0]);
    int other = u.inputs[0] == cursor ? u.inputs[1] : u.inputs[0];
    const OperatorNode& self_map = body.node(other);
    if (self_map.kind != OpKind::kMap || !reads_loop(other, reads_loop)) {
      return FailedPreconditionError("vertex runtime: unsupported union arm");
    }
    const auto& sp = std::get<MapParams>(self_map.params);
    if (sp.outputs.size() != 2) {
      return FailedPreconditionError("vertex runtime: self-message map shape");
    }
    MUSKETEER_ASSIGN_OR_RETURN(CompiledMap self,
                               CompileMap(sp, schemas[self_map.inputs[0]]));
    program.self_message = std::move(self);
    cursor = u.id;
    consumers = body.ConsumersOf(cursor);
  }
  if (consumers.size() != 1 || body.node(consumers[0]).kind != OpKind::kGroupBy) {
    return FailedPreconditionError("vertex runtime: missing gather group-by");
  }
  const OperatorNode& gather = body.node(consumers[0]);
  {
    const auto& gp = std::get<GroupByParams>(gather.params);
    if (gp.group_columns.size() != 1 || gp.aggs.size() != 1) {
      return FailedPreconditionError("vertex runtime: gather must aggregate one "
                                     "message column by vertex id");
    }
    program.gather = gp.aggs[0].fn;
    program.msg_type = program.message.schema.field(1).type;
  }

  // 4. Rejoin + apply.
  consumers = body.ConsumersOf(gather.id);
  if (consumers.size() != 1 || body.node(consumers[0]).kind != OpKind::kJoin) {
    return FailedPreconditionError("vertex runtime: missing apply join");
  }
  const OperatorNode& rejoin = body.node(consumers[0]);
  program.rejoin_vertex_on_left = reads_loop(rejoin.inputs[0], reads_loop);

  consumers = body.ConsumersOf(rejoin.id);
  if (consumers.size() != 1 || body.node(consumers[0]).kind != OpKind::kMap) {
    return FailedPreconditionError("vertex runtime: missing apply map");
  }
  const OperatorNode& apply_map = body.node(consumers[0]);
  MUSKETEER_ASSIGN_OR_RETURN(
      program.apply,
      CompileMap(std::get<MapParams>(apply_map.params), schemas[rejoin.id]));
  return program;
}

// Message accumulator with GroupByAgg-identical semantics.
struct Gathered {
  double sum = 0;
  double min = 1e300;
  double max = -1e300;
  int64_t count = 0;

  void Add(const Value& v) {
    double d = AsDouble(v);
    sum += d;
    min = std::min(min, d);
    max = std::max(max, d);
    ++count;
  }

  // Folds another accumulator in (associative; AVG via (sum, count)).
  void Merge(const Gathered& o) {
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    count += o.count;
  }

  Value Finalize(AggFn fn, FieldType msg_type) const {
    double v = 0;
    switch (fn) {
      case AggFn::kSum:
        v = sum;
        break;
      case AggFn::kCount:
        return count;
      case AggFn::kMin:
        v = min;
        break;
      case AggFn::kMax:
        v = max;
        break;
      case AggFn::kAvg:
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    // SUM/MIN/MAX of an integer message stays integral (kernel rule).
    if (msg_type == FieldType::kInt64) {
      return static_cast<int64_t>(v);
    }
    return v;
  }
};

// Runs the compiled program for `iterations` supersteps (stopping early at
// a vertex-state fixpoint when requested).
StatusOr<Table> RunSupersteps(const VertexProgram& program, const Table& vertices,
                              const Table& edges, int64_t iterations,
                              bool until_fixpoint, VertexRuntimeStats* stats) {
  std::vector<Row> state = vertices.MaterializeRows();
  // The vertex program is row-at-a-time (compiled RowProjectors); edges are
  // loop-invariant, so materialize them once outside the supersteps.
  const std::vector<Row> erows = edges.MaterializeRows();

  for (int64_t iter = 0; iter < iterations; ++iter) {
    MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
    ++stats->supersteps;
    // Vertex index on the id column.
    std::unordered_map<Value, const Row*, ValueHash, ValueEq> index;
    index.reserve(state.size());
    for (const Row& v : state) {
      index.emplace(v[program.vertex_key], &v);
    }

    // Scatter: per-edge messages to destination buckets. Edge morsels fill
    // chunk-local inboxes in parallel (the vertex index is read-only here);
    // the per-destination accumulators then merge in chunk order, a fixed
    // tree independent of the thread count.
    using Inbox = std::unordered_map<Value, Gathered, ValueHash, ValueEq>;
    auto chunk_inboxes = ParallelMapChunks<std::pair<Inbox, int64_t>>(
        erows.size(), kMorselRows,
        [&](size_t, size_t begin, size_t end) {
          std::pair<Inbox, int64_t> out;
          for (size_t e = begin; e < end; ++e) {
            const Row& edge = erows[e];
            auto it = index.find(edge[program.edge_key]);
            if (it == index.end()) {
              continue;  // dangling edge: inner-join semantics
            }
            Row joined = program.vertex_on_left
                             ? JoinRow(*it->second, program.vertex_key, edge,
                                       program.edge_key)
                             : JoinRow(edge, program.edge_key, *it->second,
                                       program.vertex_key);
            Value dst = program.message.projectors[0](joined);
            Value msg = program.message.projectors[1](joined);
            out.first[dst].Add(msg);
            ++out.second;
          }
          return out;
        });
    Inbox inbox;
    for (auto& [chunk_inbox, sent] : chunk_inboxes) {
      stats->messages_sent += sent;
      for (auto& [dst, gathered] : chunk_inbox) {
        inbox[dst].Merge(gathered);
      }
    }
    // Self-messages (extremum gathers keep the current state alive).
    if (program.self_message.has_value()) {
      for (const Row& v : state) {
        Value dst = program.self_message->projectors[0](v);
        Value msg = program.self_message->projectors[1](v);
        inbox[dst].Add(msg);
        ++stats->messages_sent;
      }
    }

    // Gather + apply: vertices with messages produce the next state. State
    // morsels apply in parallel against the read-only inbox; per-chunk next
    // vectors concatenate in chunk order (= state order, as sequentially).
    auto apply_parts = ParallelMapChunks<std::vector<Row>>(
        state.size(), kMorselRows, [&](size_t, size_t begin, size_t end) {
          std::vector<Row> chunk_next;
          for (size_t s = begin; s < end; ++s) {
            const Row& v = state[s];
            auto it = inbox.find(v[program.vertex_key]);
            if (it == inbox.end()) {
              continue;  // no messages: dropped by the rejoin (inner join)
            }
            Row acc_row{it->first,
                        it->second.Finalize(program.gather, program.msg_type)};
            Row joined = program.rejoin_vertex_on_left
                             ? JoinRow(v, program.vertex_key, acc_row, 0)
                             : JoinRow(acc_row, 0, v, program.vertex_key);
            Row updated;
            updated.reserve(program.apply.projectors.size());
            for (const RowProjector& proj : program.apply.projectors) {
              updated.push_back(proj(joined));
            }
            chunk_next.push_back(std::move(updated));
          }
          return chunk_next;
        });
    std::vector<Row> next;
    next.reserve(inbox.size());
    for (std::vector<Row>& part : apply_parts) {
      stats->vertex_updates += static_cast<int64_t>(part.size());
      next.insert(next.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    }
    if (until_fixpoint) {
      Table before(program.apply.schema, state);
      Table after(program.apply.schema, next);
      if (iter == 0) {
        // First trip: `state` still has the seed schema; compare by content
        // only when arities agree.
        before = Table(vertices.schema(), state);
      }
      if (before.schema().num_fields() == after.schema().num_fields() &&
          Table::SameContent(before, after)) {
        state = std::move(next);
        break;
      }
    }
    state = std::move(next);
  }

  Table out(program.apply.schema, std::move(state));
  out.set_scale(vertices.scale());
  return out;
}

}  // namespace

StatusOr<VertexRuntimeResult> ExecuteViaVertexRuntime(const Dag& dag,
                                                      const TableMap& base) {
  VertexRuntimeResult result;
  TableMap relations = base;
  std::vector<TablePtr> by_node(dag.num_nodes());

  for (const OperatorNode& node : dag.nodes()) {
    if (node.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(node.params);
      auto it = relations.find(p.relation);
      if (it == relations.end()) {
        return NotFoundError("base relation '" + p.relation + "' not provided");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }
    if (node.kind == OpKind::kWhile) {
      if (!IsGraphIdiom(dag, node.id)) {
        return FailedPreconditionError(
            "vertex runtime can only execute graph-idiom loops");
      }
      const auto& wp = std::get<WhileParams>(node.params);
      if (wp.bindings.size() != 1) {
        return FailedPreconditionError(
            "vertex runtime expects one loop-carried vertex relation");
      }
      // Schemas for the body: loop seed + loop-invariant inputs.
      SchemaMap body_base;
      TableMap body_tables;
      body_base[wp.bindings[0].loop_input] = by_node[node.inputs[0]]->schema();
      body_tables[wp.bindings[0].loop_input] = by_node[node.inputs[0]];
      for (size_t i = 1; i < node.inputs.size(); ++i) {
        const std::string& name = dag.node(node.inputs[i]).output;
        body_base[name] = by_node[node.inputs[i]]->schema();
        body_tables[name] = by_node[node.inputs[i]];
      }
      MUSKETEER_ASSIGN_OR_RETURN(
          VertexProgram program,
          ExtractProgram(*wp.body, wp.bindings[0].loop_input, body_base));
      auto edges_it = body_tables.find(program.edge_relation);
      if (edges_it == body_tables.end()) {
        return FailedPreconditionError("vertex runtime: edge relation '" +
                                       program.edge_relation +
                                       "' is not a loop input");
      }
      MUSKETEER_ASSIGN_OR_RETURN(
          Table final_state,
          RunSupersteps(program, *body_tables[wp.bindings[0].loop_input],
                        *edges_it->second, wp.iterations, wp.until_fixpoint,
                        &result.stats));
      auto table = std::make_shared<Table>(std::move(final_state));
      by_node[node.id] = table;
      relations[node.output] = table;
      result.relations[node.output] = table;
      continue;
    }
    // Batch pre/post-processing operators run through the kernel.
    std::vector<const Table*> inputs;
    for (int i : node.inputs) {
      inputs.push_back(by_node[i].get());
    }
    MUSKETEER_ASSIGN_OR_RETURN(Table out, EvaluateOperator(node, inputs));
    auto table = std::make_shared<Table>(std::move(out));
    by_node[node.id] = table;
    relations[node.output] = table;
    result.relations[node.output] = table;
  }
  return result;
}

}  // namespace musketeer
