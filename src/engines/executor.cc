#include "src/engines/executor.h"

#include "src/base/cancel.h"

namespace musketeer {

namespace {

Status TraceInto(const Dag& dag, const TableMap& base, int iteration,
                 ExecTrace* trace, TableMap* produced) {
  TableMap relations = base;
  std::vector<TablePtr> by_node(dag.num_nodes());

  for (const OperatorNode& node : dag.nodes()) {
    // Per-operator-batch cancellation/deadline checkpoint (no-op unless the
    // thread has a ScopedInterrupt installed, i.e. a context-bearing run).
    MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
    if (node.kind == OpKind::kInput) {
      const auto& p = std::get<InputParams>(node.params);
      auto it = relations.find(p.relation);
      if (it == relations.end()) {
        return NotFoundError("base relation '" + p.relation + "' not provided");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      continue;
    }

    if (node.kind == OpKind::kWhile) {
      const auto& p = std::get<WhileParams>(node.params);
      TableMap body_base = base;
      for (size_t i = 0; i < p.bindings.size(); ++i) {
        body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
      }
      for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
        body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
      }
      TableMap iter_out;
      for (int64_t iter = 0; iter < p.iterations; ++iter) {
        iter_out.clear();
        MUSKETEER_RETURN_IF_ERROR(TraceInto(*p.body, body_base,
                                            static_cast<int>(iter), trace,
                                            &iter_out));
        bool stable = p.until_fixpoint;
        for (const LoopBinding& b : p.bindings) {
          auto it = iter_out.find(b.body_output);
          if (it == iter_out.end()) {
            return InternalError("loop relation '" + b.body_output + "' missing");
          }
          stable = stable &&
                   Table::SameContent(*body_base[b.loop_input], *it->second);
          body_base[b.loop_input] = it->second;
          trace->loop_state_bytes += it->second->nominal_bytes();
        }
        ++trace->total_iterations;
        if (stable) {
          break;
        }
      }
      auto it = iter_out.find(p.result);
      if (it == iter_out.end()) {
        return InternalError("WHILE result relation '" + p.result + "' missing");
      }
      by_node[node.id] = it->second;
      relations[node.output] = it->second;
      (*produced)[node.output] = it->second;
      continue;
    }

    std::vector<const Table*> inputs;
    Bytes in_bytes = 0;
    for (int i : node.inputs) {
      inputs.push_back(by_node[i].get());
      in_bytes += by_node[i]->nominal_bytes();
    }
    auto result = EvaluateOperator(node, inputs);
    if (!result.ok()) {
      return Status(result.status().code(),
                    node.DebugString() + ": " + result.status().message());
    }
    auto table = std::make_shared<Table>(std::move(result).value());

    OpTrace op;
    op.node = &node;
    op.kind = node.kind;
    op.in_bytes = in_bytes;
    op.out_bytes = table->nominal_bytes();
    op.iteration = iteration;
    trace->ops.push_back(op);

    by_node[node.id] = table;
    relations[node.output] = table;
    (*produced)[node.output] = table;
  }
  return OkStatus();
}

}  // namespace

StatusOr<ExecTrace> TraceExecuteDag(const Dag& dag, const TableMap& base) {
  ExecTrace trace;
  TableMap produced;
  MUSKETEER_RETURN_IF_ERROR(TraceInto(dag, base, /*iteration=*/-1, &trace,
                                      &produced));
  trace.relations = std::move(produced);
  return trace;
}

}  // namespace musketeer
