// Simulated execution engines.
//
// ExecuteJob runs a JobPlan against the DFS: it pulls the job's inputs,
// executes the plan's sub-DAG on real data (all engines share the relational
// kernel, so results are engine-independent and verified against the
// reference interpreter by tests), pushes outputs back to the DFS, and
// returns the simulated makespan charged according to the engine's
// performance model (see src/backends/perf_model.cc for the calibration and
// DESIGN.md for the substitution rationale).
//
// The ExecutionContext overload is the execution boundary for fault-tolerant
// runs: it observes the context's cancellation token and deadline at phase
// boundaries (and, via ScopedInterrupt, inside the interpreter's operator
// loop and the substrates' stage/iteration loops), consults the seeded
// FaultInjector to decide whether this attempt fails, and verifies the
// engine substrate's outputs against the shared relational kernel before
// committing the kernel's tables to the DFS — which is what makes
// cross-engine failover bit-identical (Table::Identical) by construction.

#ifndef MUSKETEER_SRC_ENGINES_ENGINE_H_
#define MUSKETEER_SRC_ENGINES_ENGINE_H_

#include <string>

#include "src/backends/job.h"
#include "src/backends/pricing.h"
#include "src/cluster/dfs.h"
#include "src/engines/execution_context.h"
#include "src/stream/relation_channel.h"

namespace musketeer {

struct JobResult {
  SimSeconds makespan = 0;
  // Measured wall-clock seconds this job took to execute in-process; feeds
  // the RuntimeHistory calibration loop (src/obs/runtime_history.h).
  double wall_seconds = 0;
  Bytes bytes_pulled = 0;
  // Subset of bytes_pulled that came from another shard's DFS partition
  // (always 0 against an unsharded Dfs — see Dfs::IsLocal).
  Bytes bytes_pulled_remote = 0;
  Bytes bytes_pushed = 0;
  int internal_jobs = 1;   // engine jobs actually run (MR loops spawn many)
  int supersteps = 0;      // natively-run iterations
  std::string detail;      // human-readable phase breakdown
  // Observed nominal sizes of every relation the job computed, including
  // loop-body internals at steady state — harvested into the history store
  // so later cost estimates are exact (§5.2).
  std::vector<std::pair<std::string, Bytes>> observed_sizes;
  // Streamed-handoff accounting (pipelined execution, src/stream/): batches
  // and nominal bytes that moved over RelationChannels instead of the DFS.
  uint64_t stream_batches_in = 0;
  uint64_t stream_batches_out = 0;
  Bytes stream_bytes_in = 0;
  Bytes stream_bytes_out = 0;
  // True when the executor skipped this job and served its outputs from the
  // DFS on a fingerprint match (incremental resubmission). Set by the
  // executor, never by ExecuteJob.
  bool reused = false;
};

// Executes `plan` on `cluster` under `ctx`, reading inputs from and writing
// outputs to `dfs`. On success the job's output relations are stored in the
// DFS. Errors with a retryable code (see IsRetryable) leave the DFS
// untouched — outputs are committed only after the full attempt succeeds —
// so the dispatcher can re-run the job on the same or another engine.
//
// `stream` (optional) wires the job into the pipelined data plane: inputs
// listed there arrive over a RelationChannel instead of a DFS pull, outputs
// listed there are additionally streamed — as ordered batches of the
// relational kernel's result, i.e. the exact bytes the barrier path commits
// — immediately after the kernel runs, before the engine substrate and the
// commit. Streamed edges are excluded from the job's DFS pull/push byte
// accounting (they never touch storage); the DFS commit itself is
// unchanged. On any failure every not-yet-closed output channel is aborted
// so consumers unwind instead of deadlocking.
StatusOr<JobResult> ExecuteJob(const JobPlan& plan, const ClusterConfig& cluster,
                               Dfs* dfs, const ExecutionContext& ctx,
                               const JobStreamIo* stream = nullptr);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_ENGINE_H_
