// Simulated execution engines.
//
// ExecuteJob runs a JobPlan against the DFS: it pulls the job's inputs,
// executes the plan's sub-DAG on real data (all engines share the relational
// kernel, so results are engine-independent and verified against the
// reference interpreter by tests), pushes outputs back to the DFS, and
// returns the simulated makespan charged according to the engine's
// performance model (see src/backends/perf_model.cc for the calibration and
// DESIGN.md for the substitution rationale).
//
// The ExecutionContext overload is the execution boundary for fault-tolerant
// runs: it observes the context's cancellation token and deadline at phase
// boundaries (and, via ScopedInterrupt, inside the interpreter's operator
// loop and the substrates' stage/iteration loops), consults the seeded
// FaultInjector to decide whether this attempt fails, and verifies the
// engine substrate's outputs against the shared relational kernel before
// committing the kernel's tables to the DFS — which is what makes
// cross-engine failover bit-identical (Table::Identical) by construction.

#ifndef MUSKETEER_SRC_ENGINES_ENGINE_H_
#define MUSKETEER_SRC_ENGINES_ENGINE_H_

#include <string>

#include "src/backends/job.h"
#include "src/backends/pricing.h"
#include "src/cluster/dfs.h"
#include "src/engines/execution_context.h"

namespace musketeer {

struct JobResult {
  SimSeconds makespan = 0;
  // Measured wall-clock seconds this job took to execute in-process; feeds
  // the RuntimeHistory calibration loop (src/obs/runtime_history.h).
  double wall_seconds = 0;
  Bytes bytes_pulled = 0;
  // Subset of bytes_pulled that came from another shard's DFS partition
  // (always 0 against an unsharded Dfs — see Dfs::IsLocal).
  Bytes bytes_pulled_remote = 0;
  Bytes bytes_pushed = 0;
  int internal_jobs = 1;   // engine jobs actually run (MR loops spawn many)
  int supersteps = 0;      // natively-run iterations
  std::string detail;      // human-readable phase breakdown
  // Observed nominal sizes of every relation the job computed, including
  // loop-body internals at steady state — harvested into the history store
  // so later cost estimates are exact (§5.2).
  std::vector<std::pair<std::string, Bytes>> observed_sizes;
};

// Executes `plan` on `cluster` under `ctx`, reading inputs from and writing
// outputs to `dfs`. On success the job's output relations are stored in the
// DFS. Errors with a retryable code (see IsRetryable) leave the DFS
// untouched — outputs are committed only after the full attempt succeeds —
// so the dispatcher can re-run the job on the same or another engine.
StatusOr<JobResult> ExecuteJob(const JobPlan& plan, const ClusterConfig& cluster,
                               Dfs* dfs, const ExecutionContext& ctx);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_ENGINE_H_
