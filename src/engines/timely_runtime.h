// A simplified timely-dataflow runtime — the execution substrate behind
// Naiad's generic (non-GraphLINQ) path.
//
// The job DAG is instantiated as a push-based operator graph: sources stream
// input rows record-at-a-time; row-wise operators (SELECT/PROJECT/MAP)
// transform and forward each record immediately without materializing
// anything (this is why Naiad needs no LOAD phase and pipelines whole
// workflows in one job); stateful operators (JOIN, GROUP BY, set operations,
// extremes) buffer their inputs and emit when an end-of-stream notification
// arrives, in dataflow order. WHILE loops run as successive epochs through
// the same operator graph, feeding each epoch's loop output back as the next
// epoch's input.
//
// Results match the reference interpreter (identical up to floating-point
// summation order); the stats expose how much of the workflow streamed
// without buffering — the structural property the paper's Naiad numbers
// come from.

#ifndef MUSKETEER_SRC_ENGINES_TIMELY_RUNTIME_H_
#define MUSKETEER_SRC_ENGINES_TIMELY_RUNTIME_H_

#include "src/ir/eval.h"

namespace musketeer {

struct TimelyStats {
  int64_t records_streamed = 0;  // rows forwarded record-at-a-time
  int64_t records_buffered = 0;  // rows held by stateful operators
  int notifications = 0;         // end-of-stream notifications delivered
  int epochs = 0;                // loop trips executed
};

struct TimelyResult {
  TableMap relations;
  TimelyStats stats;
};

StatusOr<TimelyResult> ExecuteViaTimely(const Dag& dag, const TableMap& base);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_ENGINES_TIMELY_RUNTIME_H_
