#include "src/engines/rdd_runtime.h"

#include <algorithm>

#include "src/backends/job.h"
#include "src/base/cancel.h"
#include "src/base/parallel.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

// An in-memory partitioned dataset. Each partition is a columnar Table
// sharing the dataset schema (possibly with different field names after a
// UNION, but always the same column types).
struct Rdd {
  Schema schema;
  std::vector<Table> partitions;
  double scale = 1.0;

  size_t TotalRows() const {
    size_t n = 0;
    for (const Table& p : partitions) {
      n += p.num_rows();
    }
    return n;
  }
};

Rdd Parallelize(const Table& table, int num_partitions) {
  Rdd rdd;
  rdd.schema = table.schema();
  rdd.scale = table.scale();
  rdd.partitions.assign(std::max(1, num_partitions), Table(table.schema()));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    rdd.partitions[i % rdd.partitions.size()].AppendRowFrom(table, i);
  }
  return rdd;
}

Table Collect(const Rdd& rdd) {
  Table out(rdd.schema);
  out.set_scale(rdd.scale);
  for (const Table& partition : rdd.partitions) {
    out.AppendTableCopy(partition);
  }
  return out;
}

class RddRuntime {
 public:
  RddRuntime(const RddOptions& options, RddStats* stats)
      : p_(std::max(1, options.num_partitions)), stats_(stats) {}

  Status Run(const Dag& dag, const TableMap& base, TableMap* produced) {
    TableMap relations = base;
    std::vector<std::shared_ptr<Rdd>> by_node(dag.num_nodes());
    for (const OperatorNode& node : dag.nodes()) {
      if (node.kind == OpKind::kInput) {
        const auto& p = std::get<InputParams>(node.params);
        auto it = relations.find(p.relation);
        if (it == relations.end()) {
          return NotFoundError("base relation '" + p.relation + "' not provided");
        }
        by_node[node.id] = std::make_shared<Rdd>(Parallelize(*it->second, p_));
        continue;
      }
      if (node.kind == OpKind::kWhile) {
        const auto& wp = std::get<WhileParams>(node.params);
        TableMap body_base = base;
        for (size_t i = 0; i < wp.bindings.size(); ++i) {
          body_base[wp.bindings[i].loop_input] =
              std::make_shared<Table>(Collect(*by_node[node.inputs[i]]));
        }
        for (size_t i = wp.bindings.size(); i < node.inputs.size(); ++i) {
          body_base[dag.node(node.inputs[i]).output] =
              std::make_shared<Table>(Collect(*by_node[node.inputs[i]]));
        }
        TableMap iter_out;
        for (int64_t iter = 0; iter < wp.iterations; ++iter) {
          MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
          iter_out.clear();
          MUSKETEER_RETURN_IF_ERROR(Run(*wp.body, body_base, &iter_out));
          bool stable = wp.until_fixpoint;
          for (const LoopBinding& b : wp.bindings) {
            TablePtr next = iter_out.at(b.body_output);
            stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
            body_base[b.loop_input] = std::move(next);
          }
          if (stable) {
            break;
          }
        }
        TablePtr result = iter_out.at(wp.result);
        by_node[node.id] = std::make_shared<Rdd>(Parallelize(*result, p_));
        (*produced)[node.output] = result;
        relations[node.output] = result;
        continue;
      }

      std::vector<const Rdd*> inputs;
      for (int i : node.inputs) {
        inputs.push_back(by_node[i].get());
      }
      MUSKETEER_ASSIGN_OR_RETURN(Rdd result, RunOperator(node, inputs));
      // Nominal-scale propagation mirrors the kernel's rules.
      result.scale = OutputScale(node, inputs);
      auto rdd = std::make_shared<Rdd>(std::move(result));
      by_node[node.id] = rdd;
      auto table = std::make_shared<Table>(Collect(*rdd));
      (*produced)[node.output] = table;
      relations[node.output] = table;
    }
    return OkStatus();
  }

 private:
  static double OutputScale(const OperatorNode& node,
                            const std::vector<const Rdd*>& inputs) {
    switch (OpSizeBehavior(node.kind)) {
      case SizeBehavior::kAdditive: {
        double rows = 0;
        double nominal = 0;
        for (const Rdd* r : inputs) {
          rows += static_cast<double>(r->TotalRows());
          nominal += static_cast<double>(r->TotalRows()) * r->scale;
        }
        return rows > 0 ? nominal / rows : inputs[0]->scale;
      }
      case SizeBehavior::kConstant:
        return 1.0;
      default: {
        double scale = 0;
        for (const Rdd* r : inputs) {
          scale = std::max(scale, r->scale);
        }
        return scale;
      }
    }
  }

  StatusOr<Rdd> RunOperator(const OperatorNode& node,
                            const std::vector<const Rdd*>& inputs) {
    if (IsRowwiseOp(node.kind)) {
      return RunNarrow(node, *inputs[0]);
    }
    if (node.kind == OpKind::kUnion) {
      return RunUnion(*inputs[0], *inputs[1]);
    }
    if (node.kind == OpKind::kGroupBy) {
      return RunKeyed(node, inputs, GroupKeyCols(node, inputs[0]->schema));
    }
    if (node.kind == OpKind::kJoin) {
      return RunJoin(node, *inputs[0], *inputs[1]);
    }
    if (node.kind == OpKind::kDistinct || node.kind == OpKind::kIntersect ||
        node.kind == OpKind::kDifference) {
      std::vector<int> all_cols;
      for (size_t c = 0; c < inputs[0]->schema.num_fields(); ++c) {
        all_cols.push_back(static_cast<int>(c));
      }
      return RunKeyed(node, inputs, all_cols);
    }
    // Global operators (AGG, MAX, MIN, TOP-N, SORT, CROSS JOIN, UDF):
    // collect to the driver and apply the kernel — the single-partition path.
    ++stats_->wide_stages;
    std::vector<Table> collected;
    std::vector<const Table*> ptrs;
    for (const Rdd* r : inputs) {
      stats_->shuffled_records += static_cast<int64_t>(r->TotalRows());
      collected.push_back(Collect(*r));
    }
    for (const Table& t : collected) {
      ptrs.push_back(&t);
    }
    MUSKETEER_ASSIGN_OR_RETURN(Table out, EvaluateOperator(node, ptrs));
    return Parallelize(out, 1);
  }

  // Narrow dependency: apply per partition, no data movement. Partition
  // tasks run in parallel; each writes only its own output slot.
  StatusOr<Rdd> RunNarrow(const OperatorNode& node, const Rdd& in) {
    Rdd out;
    out.partitions.resize(in.partitions.size());
    std::vector<Status> statuses(in.partitions.size());
    ParallelChunks(in.partitions.size(), 1, [&](size_t i, size_t, size_t) {
      StatusOr<Table> result = EvaluateOperator(node, {&in.partitions[i]});
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      out.partitions[i] = std::move(*result);
    });
    for (const Status& s : statuses) {
      MUSKETEER_RETURN_IF_ERROR(s);
    }
    stats_->narrow_tasks += static_cast<int>(in.partitions.size());
    if (!out.partitions.empty()) {
      out.schema = out.partitions[0].schema();
    }
    return out;
  }

  StatusOr<Rdd> RunUnion(const Rdd& a, const Rdd& b) {
    if (a.schema.num_fields() != b.schema.num_fields()) {
      return InvalidArgumentError("UNION arity mismatch");
    }
    Rdd out;
    out.schema = a.schema;
    out.partitions = a.partitions;
    for (const Table& bp : b.partitions) {
      // Keep b partitions column-compatible with a's schema: same-typed
      // columns concatenate untouched; mixed numeric columns coerce cell-wise
      // (the UnionAll kernel's rule); string/numeric mismatch is an error.
      bool same_types = true;
      for (size_t c = 0; c < a.schema.num_fields(); ++c) {
        FieldType at = a.schema.field(c).type;
        FieldType bt = bp.schema().field(c).type;
        if (at != bt) {
          same_types = false;
          if ((at == FieldType::kString) != (bt == FieldType::kString)) {
            return InvalidArgumentError("UNION type mismatch on column " +
                                        std::to_string(c));
          }
        }
      }
      if (same_types) {
        out.partitions.push_back(bp);
      } else {
        Table coerced(a.schema);
        coerced.Reserve(bp.num_rows());
        for (size_t i = 0; i < bp.num_rows(); ++i) {
          coerced.AddRow(bp.MaterializeRow(i));
        }
        out.partitions.push_back(std::move(coerced));
      }
    }
    stats_->narrow_tasks += static_cast<int>(out.partitions.size());
    return out;
  }

  static std::vector<int> GroupKeyCols(const OperatorNode& node,
                                       const Schema& schema) {
    std::vector<int> cols;
    for (const std::string& name :
         std::get<GroupByParams>(node.params).group_columns) {
      auto idx = schema.IndexOf(name);
      if (idx.has_value()) {
        cols.push_back(*idx);
      }
    }
    return cols;
  }

  // Hash-repartitions `in` by `cols` into p_ partitions. Source partitions
  // scatter in parallel into source-private buckets, concatenated in source
  // order — identical bucket contents to the sequential scatter.
  std::vector<Table> Repartition(const Rdd& in, const std::vector<int>& cols) {
    ++stats_->wide_stages;
    std::vector<std::vector<Table>> scattered(in.partitions.size());
    ParallelChunks(in.partitions.size(), 1, [&](size_t i, size_t, size_t) {
      const Table& src = in.partitions[i];
      std::vector<Table>& buckets = scattered[i];
      buckets.assign(p_, Table(src.schema()));
      for (size_t row = 0; row < src.num_rows(); ++row) {
        buckets[HashRow(src, row, cols) % static_cast<size_t>(p_)]
            .AppendRowFrom(src, row);
      }
    });
    std::vector<Table> out(p_);
    for (size_t i = 0; i < scattered.size(); ++i) {
      for (int b = 0; b < p_; ++b) {
        out[b].AppendTable(std::move(scattered[i][b]));
      }
      stats_->shuffled_records +=
          static_cast<int64_t>(in.partitions[i].num_rows());
    }
    return out;
  }

  // Wide dependency with key-local semantics: repartition every input by the
  // operator's key, apply the kernel per co-partition.
  StatusOr<Rdd> RunKeyed(const OperatorNode& node,
                         const std::vector<const Rdd*>& inputs,
                         const std::vector<int>& key_cols) {
    if (key_cols.empty()) {
      // Global aggregation: single partition.
      ++stats_->wide_stages;
      std::vector<Table> collected;
      std::vector<const Table*> ptrs;
      for (const Rdd* r : inputs) {
        stats_->shuffled_records += static_cast<int64_t>(r->TotalRows());
        collected.push_back(Collect(*r));
      }
      for (const Table& t : collected) {
        ptrs.push_back(&t);
      }
      MUSKETEER_ASSIGN_OR_RETURN(Table out, EvaluateOperator(node, ptrs));
      return Parallelize(out, 1);
    }
    std::vector<std::vector<Table>> parts;
    for (const Rdd* r : inputs) {
      parts.push_back(Repartition(*r, key_cols));
    }
    Rdd out;
    out.partitions.resize(p_);
    std::vector<Status> statuses(p_);
    ParallelChunks(p_, 1, [&](size_t i, size_t, size_t) {
      std::vector<const Table*> ptrs;
      for (size_t j = 0; j < inputs.size(); ++j) {
        ptrs.push_back(&parts[j][i]);
      }
      StatusOr<Table> result = EvaluateOperator(node, ptrs);
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      out.partitions[i] = std::move(*result);
    });
    for (const Status& s : statuses) {
      MUSKETEER_RETURN_IF_ERROR(s);
    }
    out.schema = out.partitions[0].schema();
    return out;
  }

  StatusOr<Rdd> RunJoin(const OperatorNode& node, const Rdd& left,
                        const Rdd& right) {
    const auto& p = std::get<JoinParams>(node.params);
    auto li = left.schema.IndexOf(p.left_key);
    auto ri = right.schema.IndexOf(p.right_key);
    if (!li.has_value() || !ri.has_value()) {
      return InvalidArgumentError("JOIN key missing in RDD stage");
    }
    std::vector<Table> lparts = Repartition(left, {*li});
    std::vector<Table> rparts = Repartition(right, {*ri});
    Rdd out;
    out.partitions.resize(p_);
    std::vector<Status> statuses(p_);
    ParallelChunks(p_, 1, [&](size_t i, size_t, size_t) {
      StatusOr<Table> result = HashJoin(lparts[i], rparts[i], *li, *ri);
      if (!result.ok()) {
        statuses[i] = result.status();
        return;
      }
      out.partitions[i] = std::move(*result);
    });
    for (const Status& s : statuses) {
      MUSKETEER_RETURN_IF_ERROR(s);
    }
    out.schema = out.partitions[0].schema();
    return out;
  }

  int p_;
  RddStats* stats_;
};

}  // namespace

StatusOr<RddResult> ExecuteViaRdd(const Dag& dag, const TableMap& base,
                                  const RddOptions& options) {
  RddResult result;
  RddRuntime runtime(options, &result.stats);
  MUSKETEER_RETURN_IF_ERROR(runtime.Run(dag, base, &result.relations));
  return result;
}

}  // namespace musketeer
