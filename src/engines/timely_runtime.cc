#include "src/engines/timely_runtime.h"

#include <algorithm>

#include "src/backends/job.h"
#include "src/base/cancel.h"
#include "src/relational/ops.h"

// Parallelism note: this runtime is deliberately NOT morsel-parallelized.
// It models Naiad's record-at-a-time dataflow — operators hold mutable
// per-port state (buffers, notifications) that a streamed record mutates on
// every OnRecv, so the whole dataflow is one sequential pass by
// construction. Stateful operators that evaluate a whole relation at a
// notification barrier call the shared relational kernels, which
// parallelize internally (see DESIGN.md "Parallel data plane").

namespace musketeer {

namespace {

// One instantiated dataflow over a DAG (the WHILE bodies get their own
// instantiation per epoch).
class TimelyGraph {
 public:
  TimelyGraph(const Dag& dag, const TableMap& base, TimelyStats* stats)
      : dag_(dag), base_(base), stats_(stats) {}

  Status Run(TableMap* produced) {
    MUSKETEER_RETURN_IF_ERROR(Build());
    // Drive: stream every source, then notify its consumers; stateful
    // operators fire once all of their ports have been notified, so the
    // source order does not matter on an acyclic graph.
    for (const OperatorNode& node : dag_.nodes()) {
      if (node.kind == OpKind::kInput) {
        const auto& p = std::get<InputParams>(node.params);
        auto it = relations_.find(p.relation);
        if (it == relations_.end()) {
          return NotFoundError("base relation '" + p.relation + "' not provided");
        }
        for (size_t i = 0; i < it->second->num_rows(); ++i) {
          MUSKETEER_RETURN_IF_ERROR(Fanout(node.id, it->second->MaterializeRow(i)));
        }
        MUSKETEER_RETURN_IF_ERROR(NotifyDownstream(node.id));
        ops_[node.id].collected = nullptr;  // inputs pass through untouched
        relations_[node.output] = it->second;
        continue;
      }
      if (node.kind == OpKind::kWhile) {
        MUSKETEER_RETURN_IF_ERROR(RunWhile(node, produced));
        continue;
      }
    }
    // Collect every operator's emissions as its relation.
    for (const OperatorNode& node : dag_.nodes()) {
      if (node.kind == OpKind::kInput || node.kind == OpKind::kWhile) {
        continue;
      }
      OpState& op = ops_[node.id];
      if (op.collected == nullptr) {
        return InternalError("operator '" + node.output + "' never fired");
      }
      op.collected->set_scale(OutputScale(node));
      relations_[node.output] = op.collected;
      (*produced)[node.output] = op.collected;
    }
    return OkStatus();
  }

 private:
  struct PortRef {
    int consumer = -1;
    int port = 0;
  };

  struct OpState {
    // Streaming transforms (row-wise operators only).
    RowPredicate predicate;                 // kSelect
    std::vector<RowProjector> projectors;   // kProject / kMap
    // Buffers for stateful operators, one per input port.
    std::vector<Table> buffers;
    // Downstream wiring and notification accounting.
    std::vector<PortRef> fanout;
    int ports = 0;
    int ports_notified = 0;
    bool fired = false;
    bool streaming = false;  // forwards records without buffering
    std::shared_ptr<Table> collected;
    Schema out_schema;
  };

  Status Build() {
    relations_ = base_;
    ops_.resize(dag_.num_nodes());

    // Infer schemas so streaming transforms can be compiled.
    SchemaMap schema_base;
    for (const auto& [name, table] : relations_) {
      schema_base[name] = table->schema();
    }
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<Schema> schemas,
                               dag_.InferSchemas(schema_base));

    for (const OperatorNode& node : dag_.nodes()) {
      OpState& op = ops_[node.id];
      op.ports = static_cast<int>(node.inputs.size());
      op.out_schema = schemas[node.id];
      op.collected = std::make_shared<Table>(op.out_schema);
      for (size_t k = 0; k < node.inputs.size(); ++k) {
        ops_[node.inputs[k]].fanout.push_back(
            PortRef{node.id, static_cast<int>(k)});
      }
      if (node.kind == OpKind::kWhile) {
        // Loop ingress: buffer each input port with its proper schema.
        for (int k = 0; k < op.ports; ++k) {
          op.buffers.emplace_back(schemas[node.inputs[k]]);
        }
        continue;
      }
      if (node.kind == OpKind::kInput) {
        continue;
      }
      const Schema& in_schema = schemas[node.inputs[0]];
      switch (node.kind) {
        case OpKind::kSelect: {
          const auto& p = std::get<SelectParams>(node.params);
          MUSKETEER_ASSIGN_OR_RETURN(op.predicate,
                                     p.condition->CompilePredicate(in_schema));
          op.streaming = true;
          break;
        }
        case OpKind::kProject: {
          const auto& p = std::get<ProjectParams>(node.params);
          for (const std::string& name : p.columns) {
            auto idx = in_schema.IndexOf(name);
            if (!idx.has_value()) {
              return InvalidArgumentError("timely: missing column '" + name + "'");
            }
            int i = *idx;
            op.projectors.emplace_back([i](const Row& row) { return row[i]; });
          }
          op.streaming = true;
          break;
        }
        case OpKind::kMap: {
          const auto& p = std::get<MapParams>(node.params);
          for (size_t i = 0; i < p.outputs.size(); ++i) {
            MUSKETEER_ASSIGN_OR_RETURN(RowProjector proj,
                                       p.outputs[i].expr->Compile(in_schema));
            if (op.out_schema.field(i).type == FieldType::kDouble) {
              op.projectors.emplace_back([proj](const Row& row) -> Value {
                return AsDouble(proj(row));
              });
            } else {
              op.projectors.push_back(proj);
            }
          }
          op.streaming = true;
          break;
        }
        case OpKind::kUnion:
          op.streaming = true;  // forwards both ports record-at-a-time
          break;
        default:
          // Stateful: buffer per port until notified on every port.
          for (int k = 0; k < op.ports; ++k) {
            op.buffers.emplace_back(schemas[node.inputs[k]]);
          }
          break;
      }
    }
    return OkStatus();
  }

  Status Fanout(int producer, const Row& row) {
    for (const PortRef& ref : ops_[producer].fanout) {
      MUSKETEER_RETURN_IF_ERROR(OnRecv(ref.consumer, ref.port, row));
    }
    return OkStatus();
  }

  Status Emit(int node, const Row& row) {
    ops_[node].collected->AddRow(row);
    return Fanout(node, row);
  }

  Status OnRecv(int node_id, int port, const Row& row) {
    const OperatorNode& node = dag_.node(node_id);
    OpState& op = ops_[node_id];
    if (node.kind == OpKind::kWhile) {
      // Loop inputs buffer at the loop boundary (the ingress vertex).
      op.buffers[port].AddRow(row);
      ++stats_->records_buffered;
      return OkStatus();
    }
    if (op.streaming) {
      ++stats_->records_streamed;
      switch (node.kind) {
        case OpKind::kSelect:
          if (op.predicate(row)) {
            return Emit(node_id, row);
          }
          return OkStatus();
        case OpKind::kProject:
        case OpKind::kMap: {
          Row out;
          out.reserve(op.projectors.size());
          for (const RowProjector& proj : op.projectors) {
            out.push_back(proj(row));
          }
          return Emit(node_id, std::move(out));
        }
        case OpKind::kUnion:
          return Emit(node_id, row);
        default:
          return InternalError("streaming flag on stateful operator");
      }
    }
    op.buffers[port].AddRow(row);
    ++stats_->records_buffered;
    return OkStatus();
  }

  Status NotifyDownstream(int producer) {
    for (const PortRef& ref : ops_[producer].fanout) {
      MUSKETEER_RETURN_IF_ERROR(OnNotify(ref.consumer));
    }
    return OkStatus();
  }

  Status OnNotify(int node_id) {
    const OperatorNode& node = dag_.node(node_id);
    OpState& op = ops_[node_id];
    ++op.ports_notified;
    ++stats_->notifications;
    if (op.ports_notified < op.ports || op.fired) {
      return OkStatus();
    }
    op.fired = true;
    if (node.kind == OpKind::kWhile) {
      return OkStatus();  // loops fire from Run() once their inputs settled
    }
    if (!op.streaming) {
      // Stateful operator: evaluate the buffered ports, stream the result.
      std::vector<const Table*> inputs;
      for (const Table& t : op.buffers) {
        inputs.push_back(&t);
      }
      MUSKETEER_ASSIGN_OR_RETURN(Table result, EvaluateOperator(node, inputs));
      for (size_t i = 0; i < result.num_rows(); ++i) {
        Row row = result.MaterializeRow(i);
        MUSKETEER_RETURN_IF_ERROR(Fanout(node_id, row));
        op.collected->AddRow(row);
      }
    }
    return NotifyDownstream(node_id);
  }

  Status RunWhile(const OperatorNode& node, TableMap* produced) {
    const auto& wp = std::get<WhileParams>(node.params);
    OpState& op = ops_[node.id];
    TableMap body_base = base_;
    for (size_t i = 0; i < wp.bindings.size(); ++i) {
      auto seed = std::make_shared<Table>(std::move(op.buffers[i]));
      seed->set_scale(SourceScale(node.inputs[i]));
      body_base[wp.bindings[i].loop_input] = std::move(seed);
    }
    for (size_t i = wp.bindings.size(); i < node.inputs.size(); ++i) {
      auto inv = std::make_shared<Table>(std::move(op.buffers[i]));
      inv->set_scale(SourceScale(node.inputs[i]));
      body_base[dag_.node(node.inputs[i]).output] = std::move(inv);
    }
    TableMap iter_out;
    for (int64_t iter = 0; iter < wp.iterations; ++iter) {
      MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
      ++stats_->epochs;
      iter_out.clear();
      TimelyGraph epoch(*wp.body, body_base, stats_);
      MUSKETEER_RETURN_IF_ERROR(epoch.Run(&iter_out));
      bool stable = wp.until_fixpoint;
      for (const LoopBinding& b : wp.bindings) {
        TablePtr next = iter_out.at(b.body_output);
        stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
        body_base[b.loop_input] = std::move(next);
      }
      if (stable) {
        break;
      }
    }
    TablePtr result = iter_out.at(wp.result);
    // Egress: stream the loop result onward.
    for (size_t i = 0; i < result->num_rows(); ++i) {
      MUSKETEER_RETURN_IF_ERROR(Fanout(node.id, result->MaterializeRow(i)));
    }
    MUSKETEER_RETURN_IF_ERROR(NotifyDownstream(node.id));
    op.collected = nullptr;
    relations_[node.output] = result;
    (*produced)[node.output] = result;
    return OkStatus();
  }

  // Nominal-scale propagation, mirroring the kernel's rules.
  double OutputScale(const OperatorNode& node) const {
    switch (OpSizeBehavior(node.kind)) {
      case SizeBehavior::kAdditive: {
        double rows = 0;
        double nominal = 0;
        for (int in : node.inputs) {
          double s = SourceScale(in);
          double n = SourceRows(in);
          rows += n;
          nominal += n * s;
        }
        return rows > 0 ? nominal / rows : 1.0;
      }
      case SizeBehavior::kConstant:
        return 1.0;
      default: {
        double scale = 0;
        for (int in : node.inputs) {
          scale = std::max(scale, SourceScale(in));
        }
        return scale > 0 ? scale : 1.0;
      }
    }
  }

  double SourceScale(int id) const {
    auto it = relations_.find(dag_.node(id).output);
    return it != relations_.end() ? it->second->scale() : 1.0;
  }
  double SourceRows(int id) const {
    auto it = relations_.find(dag_.node(id).output);
    return it != relations_.end() ? static_cast<double>(it->second->num_rows())
                                  : 0.0;
  }

  const Dag& dag_;
  TableMap base_;
  TableMap relations_;
  std::vector<OpState> ops_;
  TimelyStats* stats_;
};

}  // namespace

StatusOr<TimelyResult> ExecuteViaTimely(const Dag& dag, const TableMap& base) {
  TimelyResult result;
  TimelyGraph graph(dag, base, &result.stats);
  MUSKETEER_RETURN_IF_ERROR(graph.Run(&result.relations));
  return result;
}

}  // namespace musketeer
