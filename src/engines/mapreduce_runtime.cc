#include "src/engines/mapreduce_runtime.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "src/backends/job.h"
#include "src/base/parallel.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

// ---- task plumbing ---------------------------------------------------------

// Contiguous input splits, one per map task.
std::vector<std::vector<Row>> SplitRows(const std::vector<Row>& rows, int n) {
  std::vector<std::vector<Row>> splits;
  n = std::max(1, n);
  size_t per = (rows.size() + n - 1) / std::max<size_t>(1, n);
  per = std::max<size_t>(per, 1);
  for (size_t start = 0; start < rows.size(); start += per) {
    size_t end = std::min(rows.size(), start + per);
    splits.emplace_back(rows.begin() + start, rows.begin() + end);
  }
  if (splits.empty()) {
    splits.emplace_back();
  }
  return splits;
}

int PartitionOf(const Row& row, const std::vector<int>& key_cols, int reducers) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  if (key_cols.empty()) {
    return 0;  // global operators gather on one reducer
  }
  for (int c : key_cols) {
    h ^= HashValue(row[c]) + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return static_cast<int>(h % static_cast<size_t>(reducers));
}

// Runs the map phase of one input: splits rows, applies `map_fn` per split
// (fused row-wise work happens inside), and scatters output rows to reducer
// buckets by key hash. Map tasks run in parallel on the shared task pool;
// each scatters into task-private buckets which are concatenated in split
// order, so bucket contents are identical to the sequential execution.
// `combined_records` is the task's combiner-output delta (stats are
// aggregated by the caller after the parallel phase).
using SplitFn = std::function<StatusOr<std::vector<Row>>(
    std::vector<Row> split, int64_t* combined_records)>;

struct ShuffleBuckets {
  // buckets[reducer] = rows destined for that reduce task.
  std::vector<std::vector<Row>> buckets;
};

Status MapAndScatter(const std::vector<Row>& input, int num_mappers,
                     int num_reducers, const std::vector<int>& key_cols,
                     const SplitFn& map_fn, ShuffleBuckets* out,
                     MapReduceStats* stats) {
  std::vector<std::vector<Row>> splits = SplitRows(input, num_mappers);
  struct MapTaskOut {
    Status status;
    std::vector<std::vector<Row>> buckets;
    int64_t map_output = 0;
    int64_t combined = 0;
  };
  std::vector<MapTaskOut> tasks(splits.size());
  ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
    MapTaskOut& o = tasks[t];
    StatusOr<std::vector<Row>> mapped = map_fn(std::move(splits[t]), &o.combined);
    if (!mapped.ok()) {
      o.status = mapped.status();
      return;
    }
    o.map_output = static_cast<int64_t>(mapped->size());
    o.buckets.resize(num_reducers);
    for (Row& row : *mapped) {
      o.buckets[PartitionOf(row, key_cols, num_reducers)].push_back(
          std::move(row));
    }
  });
  out->buckets.resize(num_reducers);
  for (MapTaskOut& o : tasks) {
    MUSKETEER_RETURN_IF_ERROR(o.status);
    ++stats->map_tasks;
    stats->map_output_records += o.map_output;
    stats->combined_output_records += o.combined;
    for (int r = 0; r < num_reducers; ++r) {
      std::vector<Row>& dst = out->buckets[r];
      std::vector<Row>& src = o.buckets[r];
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    }
  }
  for (const auto& b : out->buckets) {
    stats->shuffled_records += static_cast<int64_t>(b.size());
  }
  return OkStatus();
}

// ---- combiner support ------------------------------------------------------

// Decomposes aggregations into partial (map-side) and final (reduce-side)
// steps; AVG becomes (SUM, COUNT), COUNT becomes COUNT then SUM.
struct CombinerPlan {
  std::vector<AggSpec> partial;           // run on each map task's output
  std::vector<int> partial_group;         // group columns in the input
  // For final assembly: per original agg, indices of its partial columns
  // (offset *after* the group columns in the partial schema).
  struct FinalAgg {
    AggFn fn;
    int partial_a = 0;   // first partial column
    int partial_b = -1;  // second (AVG count), -1 if unused
  };
  std::vector<FinalAgg> finals;
};

StatusOr<CombinerPlan> PlanCombiner(const std::vector<int>& group_cols,
                                    const std::vector<NamedAgg>& aggs,
                                    const Schema& in_schema) {
  CombinerPlan plan;
  plan.partial_group = group_cols;
  int next = 0;
  for (const NamedAgg& agg : aggs) {
    int col = 0;
    if (agg.fn != AggFn::kCount) {
      auto idx = in_schema.IndexOf(agg.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("AGG column '" + agg.column + "' missing");
      }
      col = *idx;
    }
    CombinerPlan::FinalAgg f;
    f.fn = agg.fn;
    switch (agg.fn) {
      case AggFn::kSum:
      case AggFn::kMin:
      case AggFn::kMax:
        plan.partial.push_back({agg.fn, col, agg.output_name});
        f.partial_a = next++;
        break;
      case AggFn::kCount:
        plan.partial.push_back({AggFn::kCount, col, agg.output_name});
        f.partial_a = next++;
        break;
      case AggFn::kAvg:
        plan.partial.push_back({AggFn::kSum, col, agg.output_name + "__sum"});
        plan.partial.push_back({AggFn::kCount, col, agg.output_name + "__n"});
        f.partial_a = next++;
        f.partial_b = next++;
        break;
    }
    plan.finals.push_back(f);
  }
  return plan;
}

// Merges combined partial rows on the reduce side into the final schema
// produced by the reference GroupByAgg.
StatusOr<Table> FinalizeCombined(const std::vector<Row>& partial_rows,
                                 const CombinerPlan& plan,
                                 const Schema& out_schema, size_t num_group) {
  struct Acc {
    Row group;
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
  };
  size_t num_partial = plan.partial.size();
  std::unordered_map<Row, Acc, RowHash, RowEq> groups;
  for (const Row& row : partial_rows) {
    Row key(row.begin(), row.begin() + num_group);
    Acc& acc = groups[key];
    if (acc.sums.empty()) {
      acc.group = key;
      acc.sums.assign(num_partial, 0.0);
      acc.mins.assign(num_partial, 1e300);
      acc.maxs.assign(num_partial, -1e300);
    }
    for (size_t j = 0; j < num_partial; ++j) {
      double v = AsDouble(row[num_group + j]);
      acc.sums[j] += v;  // SUM/COUNT partials merge by summation
      acc.mins[j] = std::min(acc.mins[j], v);
      acc.maxs[j] = std::max(acc.maxs[j], v);
    }
  }
  Table out(out_schema);
  for (auto& [key, acc] : groups) {
    Row row = acc.group;
    for (size_t j = 0; j < plan.finals.size(); ++j) {
      const CombinerPlan::FinalAgg& f = plan.finals[j];
      double v = 0;
      switch (f.fn) {
        case AggFn::kSum:
        case AggFn::kCount:
          v = acc.sums[f.partial_a];
          break;
        case AggFn::kMin:
          v = acc.mins[f.partial_a];
          break;
        case AggFn::kMax:
          v = acc.maxs[f.partial_a];
          break;
        case AggFn::kAvg: {
          double n = acc.sums[f.partial_b];
          v = n > 0 ? acc.sums[f.partial_a] / n : 0;
          break;
        }
      }
      if (out_schema.field(num_group + j).type == FieldType::kInt64) {
        row.push_back(static_cast<int64_t>(v));
      } else {
        row.push_back(v);
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

// ---- the runtime -----------------------------------------------------------

class MapReduceRuntime {
 public:
  MapReduceRuntime(const MapReduceOptions& options, MapReduceStats* stats)
      : options_(options), stats_(stats) {}

  Status Run(const Dag& dag, const TableMap& base, TableMap* produced) {
    TableMap relations = base;
    std::vector<TablePtr> by_node(dag.num_nodes());
    for (const OperatorNode& node : dag.nodes()) {
      if (node.kind == OpKind::kInput) {
        const auto& p = std::get<InputParams>(node.params);
        auto it = relations.find(p.relation);
        if (it == relations.end()) {
          return NotFoundError("base relation '" + p.relation + "' not provided");
        }
        by_node[node.id] = it->second;
        relations[node.output] = it->second;
        continue;
      }
      if (node.kind == OpKind::kWhile) {
        MUSKETEER_RETURN_IF_ERROR(
            RunWhile(dag, node, base, by_node, &relations, produced));
        continue;
      }
      std::vector<const Table*> inputs;
      for (int i : node.inputs) {
        inputs.push_back(by_node[i].get());
      }
      MUSKETEER_ASSIGN_OR_RETURN(Table result, RunOperator(node, inputs));
      result.set_scale(OutputScale(node, inputs));
      auto table = std::make_shared<Table>(std::move(result));
      by_node[node.id] = table;
      relations[node.output] = table;
      (*produced)[node.output] = table;
    }
    return OkStatus();
  }

 private:
  Status RunWhile(const Dag& dag, const OperatorNode& node, const TableMap& base,
                  std::vector<TablePtr>& by_node, TableMap* relations,
                  TableMap* produced) {
    const auto& p = std::get<WhileParams>(node.params);
    TableMap body_base = base;
    for (size_t i = 0; i < p.bindings.size(); ++i) {
      body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
    }
    for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
      body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
    }
    TableMap iter_out;
    for (int64_t iter = 0; iter < p.iterations; ++iter) {
      iter_out.clear();
      MUSKETEER_RETURN_IF_ERROR(Run(*p.body, body_base, &iter_out));
      bool stable = p.until_fixpoint;
      for (const LoopBinding& b : p.bindings) {
        TablePtr next = iter_out.at(b.body_output);
        stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
        body_base[b.loop_input] = std::move(next);
      }
      if (stable) {
        break;
      }
    }
    TablePtr result = iter_out.at(p.result);
    by_node[node.id] = result;
    (*relations)[node.output] = result;
    (*produced)[node.output] = result;
    return OkStatus();
  }

  // Preserves the scale-propagation rules of the relational kernel.
  static double OutputScale(const OperatorNode& node,
                            const std::vector<const Table*>& inputs) {
    switch (OpSizeBehavior(node.kind)) {
      case SizeBehavior::kAdditive: {
        double rows = 0;
        double nominal = 0;
        for (const Table* t : inputs) {
          rows += static_cast<double>(t->num_rows());
          nominal += t->nominal_rows();
        }
        return rows > 0 ? nominal / rows : inputs[0]->scale();
      }
      case SizeBehavior::kConstant:
        return 1.0;
      default: {
        double scale = 0;
        for (const Table* t : inputs) {
          scale = std::max(scale, t->scale());
        }
        return scale;
      }
    }
  }

  StatusOr<Table> RunOperator(const OperatorNode& node,
                              const std::vector<const Table*>& inputs) {
    if (IsRowwiseOp(node.kind) || node.kind == OpKind::kUnion) {
      return RunMapOnly(node, inputs);
    }
    if (!IsShuffleOp(node.kind)) {
      // UDFs / black boxes run as one opaque task.
      ++stats_->stages;
      ++stats_->map_tasks;
      return EvaluateOperator(node, inputs);
    }
    return RunShuffleStage(node, inputs);
  }

  // Map-only stage: row-wise operators (and UNION's concatenation) applied
  // per input split; no shuffle.
  StatusOr<Table> RunMapOnly(const OperatorNode& node,
                             const std::vector<const Table*>& inputs) {
    ++stats_->stages;
    if (node.kind == OpKind::kUnion) {
      stats_->map_tasks += 2;
      return EvaluateOperator(node, inputs);
    }
    std::vector<std::vector<Row>> splits =
        SplitRows(inputs[0]->rows(), options_.num_mappers);
    struct TaskOut {
      Status status;
      Table table;
    };
    std::vector<TaskOut> parts(splits.size());
    ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
      Table split_table(inputs[0]->schema(), std::move(splits[t]));
      split_table.set_scale(inputs[0]->scale());
      StatusOr<Table> part = EvaluateOperator(node, {&split_table});
      if (part.ok()) {
        parts[t].table = std::move(*part);
      } else {
        parts[t].status = part.status();
      }
    });
    Table out;
    bool first = true;
    for (TaskOut& t : parts) {
      MUSKETEER_RETURN_IF_ERROR(t.status);
      ++stats_->map_tasks;
      if (first) {
        out = Table(t.table.schema());
        first = false;
      }
      out.AppendRows(std::move(*t.table.mutable_rows()));
    }
    return out;
  }

  StatusOr<Table> RunShuffleStage(const OperatorNode& node,
                                  const std::vector<const Table*>& inputs) {
    ++stats_->stages;
    switch (node.kind) {
      case OpKind::kGroupBy:
        return RunGroupBy(node, *inputs[0]);
      case OpKind::kJoin:
        return RunJoin(node, *inputs[0], *inputs[1]);
      case OpKind::kDistinct:
      case OpKind::kIntersect:
      case OpKind::kDifference:
        return RunSetOp(node, inputs);
      default:
        return RunGlobal(node, inputs);
    }
  }

  StatusOr<Table> RunGroupBy(const OperatorNode& node, const Table& in) {
    const auto& p = std::get<GroupByParams>(node.params);
    std::vector<int> group_cols;
    for (const std::string& name : p.group_columns) {
      auto idx = in.schema().IndexOf(name);
      if (!idx.has_value()) {
        return InvalidArgumentError("GROUP BY column '" + name + "' missing");
      }
      group_cols.push_back(*idx);
    }
    // Output schema, computed cheaply on an empty input.
    Table empty_in(in.schema());
    MUSKETEER_ASSIGN_OR_RETURN(Table schema_probe,
                               EvaluateOperator(node, {&empty_in}));
    const Schema& out_schema = schema_probe.schema();

    if (!options_.use_combiners) {
      // Plain path: scatter raw rows by group key, reduce with the kernel.
      ShuffleBuckets buckets;
      MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
          in.rows(), options_.num_mappers, options_.num_reducers, group_cols,
          [](std::vector<Row> split, int64_t*) { return split; }, &buckets,
          stats_));
      struct ReduceOut {
        Status status;
        Table table;
      };
      std::vector<ReduceOut> parts(buckets.buckets.size());
      ParallelChunks(buckets.buckets.size(), 1, [&](size_t r, size_t, size_t) {
        if (buckets.buckets[r].empty()) {
          return;  // empty partitions contribute nothing
        }
        Table part_in(in.schema(), std::move(buckets.buckets[r]));
        StatusOr<Table> part = EvaluateOperator(node, {&part_in});
        if (part.ok()) {
          parts[r].table = std::move(*part);
        } else {
          parts[r].status = part.status();
        }
      });
      Table out(out_schema);
      for (ReduceOut& r : parts) {
        ++stats_->reduce_tasks;
        MUSKETEER_RETURN_IF_ERROR(r.status);
        out.AppendRows(std::move(*r.table.mutable_rows()));
      }
      if (group_cols.empty() && out.num_rows() == 0) {
        return EvaluateOperator(node, {&in});  // global agg over empty input
      }
      return out;
    }

    // Combiner path: per-map partial aggregation, reduce merges partials.
    // Partial rows lead with the group columns.
    MUSKETEER_ASSIGN_OR_RETURN(CombinerPlan plan,
                               PlanCombiner(group_cols, p.aggs, in.schema()));
    std::vector<int> partial_key_cols(group_cols.size());
    for (size_t i = 0; i < group_cols.size(); ++i) {
      partial_key_cols[i] = static_cast<int>(i);
    }
    ShuffleBuckets buckets;
    Schema in_schema = in.schema();
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        in.rows(), options_.num_mappers, options_.num_reducers, partial_key_cols,
        [&](std::vector<Row> split,
            int64_t* combined) -> StatusOr<std::vector<Row>> {
          if (split.empty()) {
            return std::vector<Row>{};
          }
          Table split_table(in_schema, std::move(split));
          MUSKETEER_ASSIGN_OR_RETURN(
              Table partial, GroupByAgg(split_table, group_cols, plan.partial));
          *combined += static_cast<int64_t>(partial.num_rows());
          return *partial.mutable_rows();
        },
        &buckets, stats_));

    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> parts(buckets.buckets.size());
    ParallelChunks(buckets.buckets.size(), 1, [&](size_t r, size_t, size_t) {
      if (buckets.buckets[r].empty()) {
        return;
      }
      StatusOr<Table> part = FinalizeCombined(buckets.buckets[r], plan,
                                              out_schema, group_cols.size());
      if (part.ok()) {
        parts[r].table = std::move(*part);
      } else {
        parts[r].status = part.status();
      }
    });
    Table out(out_schema);
    for (ReduceOut& r : parts) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      out.AppendRows(std::move(*r.table.mutable_rows()));
    }
    if (group_cols.empty() && out.num_rows() == 0) {
      return EvaluateOperator(node, {&in});
    }
    return out;
  }

  StatusOr<Table> RunJoin(const OperatorNode& node, const Table& left,
                          const Table& right) {
    const auto& p = std::get<JoinParams>(node.params);
    auto li = left.schema().IndexOf(p.left_key);
    auto ri = right.schema().IndexOf(p.right_key);
    if (!li.has_value() || !ri.has_value()) {
      return InvalidArgumentError("JOIN key missing in MapReduce stage");
    }
    ShuffleBuckets lbuckets;
    ShuffleBuckets rbuckets;
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        left.rows(), options_.num_mappers, options_.num_reducers, {*li},
        [](std::vector<Row> s, int64_t*) { return s; }, &lbuckets, stats_));
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        right.rows(), options_.num_mappers, options_.num_reducers, {*ri},
        [](std::vector<Row> s, int64_t*) { return s; }, &rbuckets, stats_));
    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> parts(options_.num_reducers);
    ParallelChunks(parts.size(), 1, [&](size_t r, size_t, size_t) {
      Table l(left.schema(), std::move(lbuckets.buckets[r]));
      Table rt(right.schema(), std::move(rbuckets.buckets[r]));
      StatusOr<Table> part = HashJoin(l, rt, *li, *ri);
      if (part.ok()) {
        parts[r].table = std::move(*part);
      } else {
        parts[r].status = part.status();
      }
    });
    Table out;
    bool first = true;
    for (ReduceOut& r : parts) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      if (first) {
        out = Table(r.table.schema());
        first = false;
      }
      out.AppendRows(std::move(*r.table.mutable_rows()));
    }
    return out;
  }

  StatusOr<Table> RunSetOp(const OperatorNode& node,
                           const std::vector<const Table*>& inputs) {
    // Whole-row keys: co-partition all inputs and apply the kernel per
    // reducer (identical rows meet on the same reducer).
    std::vector<int> key_cols;
    for (size_t c = 0; c < inputs[0]->schema().num_fields(); ++c) {
      key_cols.push_back(static_cast<int>(c));
    }
    std::vector<ShuffleBuckets> buckets(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i]->schema().num_fields() != inputs[0]->schema().num_fields()) {
        return InvalidArgumentError("set-operation arity mismatch");
      }
      MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
          inputs[i]->rows(), options_.num_mappers, options_.num_reducers,
          key_cols, [](std::vector<Row> s, int64_t*) { return s; }, &buckets[i],
          stats_));
    }
    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> results(options_.num_reducers);
    ParallelChunks(results.size(), 1, [&](size_t r, size_t, size_t) {
      std::vector<Table> parts;
      std::vector<const Table*> part_ptrs;
      for (size_t i = 0; i < inputs.size(); ++i) {
        parts.emplace_back(inputs[i]->schema(), std::move(buckets[i].buckets[r]));
      }
      for (const Table& t : parts) {
        part_ptrs.push_back(&t);
      }
      StatusOr<Table> part = EvaluateOperator(node, part_ptrs);
      if (part.ok()) {
        results[r].table = std::move(*part);
      } else {
        results[r].status = part.status();
      }
    });
    Table out(inputs[0]->schema());
    for (ReduceOut& r : results) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      out.AppendRows(std::move(*r.table.mutable_rows()));
    }
    return out;
  }

  // Global operators (AGG, MAX, MIN, TOP-N, SORT, CROSS JOIN): a map-side
  // pre-reduction where valid, then a single reduce task.
  StatusOr<Table> RunGlobal(const OperatorNode& node,
                            const std::vector<const Table*>& inputs) {
    bool pre_reducible = node.kind == OpKind::kMax || node.kind == OpKind::kMin ||
                         node.kind == OpKind::kTopN;
    if (pre_reducible && options_.use_combiners) {
      std::vector<std::vector<Row>> splits =
          SplitRows(inputs[0]->rows(), options_.num_mappers);
      struct TaskOut {
        Status status;
        Table table;
      };
      std::vector<TaskOut> parts(splits.size());
      ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
        Table split_table(inputs[0]->schema(), std::move(splits[t]));
        if (split_table.num_rows() == 0) {
          return;
        }
        StatusOr<Table> part = EvaluateOperator(node, {&split_table});
        if (part.ok()) {
          parts[t].table = std::move(*part);
        } else {
          parts[t].status = part.status();
        }
      });
      Table gathered(inputs[0]->schema());
      for (TaskOut& t : parts) {
        ++stats_->map_tasks;
        MUSKETEER_RETURN_IF_ERROR(t.status);
        stats_->combined_output_records +=
            static_cast<int64_t>(t.table.num_rows());
        gathered.AppendRows(std::move(*t.table.mutable_rows()));
      }
      ++stats_->reduce_tasks;
      stats_->shuffled_records += static_cast<int64_t>(gathered.num_rows());
      return EvaluateOperator(node, {&gathered});
    }
    ++stats_->map_tasks;
    ++stats_->reduce_tasks;
    for (const Table* t : inputs) {
      stats_->shuffled_records += static_cast<int64_t>(t->num_rows());
    }
    return EvaluateOperator(node, inputs);
  }

  MapReduceOptions options_;
  MapReduceStats* stats_;
};

}  // namespace

StatusOr<MapReduceResult> ExecuteViaMapReduce(const Dag& dag, const TableMap& base,
                                              const MapReduceOptions& options) {
  MapReduceResult result;
  MapReduceRuntime runtime(options, &result.stats);
  MUSKETEER_RETURN_IF_ERROR(runtime.Run(dag, base, &result.relations));
  return result;
}

}  // namespace musketeer
