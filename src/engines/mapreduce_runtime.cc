#include "src/engines/mapreduce_runtime.h"

#include <algorithm>
#include <unordered_map>

#include "src/backends/job.h"
#include "src/base/cancel.h"
#include "src/base/parallel.h"
#include "src/relational/ops.h"

namespace musketeer {

namespace {

// ---- task plumbing ---------------------------------------------------------

// Contiguous input splits, one per map task (column slices, no row copies of
// variant cells).
std::vector<Table> SplitTable(const Table& in, int n) {
  std::vector<Table> splits;
  n = std::max(1, n);
  size_t per = (in.num_rows() + n - 1) / std::max<size_t>(1, n);
  per = std::max<size_t>(per, 1);
  for (size_t start = 0; start < in.num_rows(); start += per) {
    size_t end = std::min(in.num_rows(), start + per);
    splits.push_back(in.Slice(start, end));
  }
  if (splits.empty()) {
    splits.emplace_back(in.schema());
  }
  return splits;
}

int PartitionOf(const Table& t, size_t row, const std::vector<int>& key_cols,
                int reducers) {
  if (key_cols.empty()) {
    return 0;  // global operators gather on one reducer
  }
  return static_cast<int>(HashRow(t, row, key_cols) %
                          static_cast<size_t>(reducers));
}

// Runs the map phase of one input: splits the table, applies `map_fn` per
// split (fused row-wise work happens inside), and scatters output rows to
// reducer buckets by key hash. Map tasks run in parallel on the shared task
// pool; each scatters into task-private buckets which are concatenated in
// split order, so bucket contents are identical to the sequential execution.
// `combined_records` is the task's combiner-output delta (stats are
// aggregated by the caller after the parallel phase).
using SplitFn =
    std::function<StatusOr<Table>(Table split, int64_t* combined_records)>;

struct ShuffleBuckets {
  // buckets[reducer] = rows destined for that reduce task. Every bucket
  // carries the mapped schema even when empty.
  std::vector<Table> buckets;
};

Status MapAndScatter(const Table& input, int num_mappers, int num_reducers,
                     const std::vector<int>& key_cols, const SplitFn& map_fn,
                     ShuffleBuckets* out, MapReduceStats* stats) {
  std::vector<Table> splits = SplitTable(input, num_mappers);
  struct MapTaskOut {
    Status status;
    std::vector<Table> buckets;
    int64_t map_output = 0;
    int64_t combined = 0;
  };
  std::vector<MapTaskOut> tasks(splits.size());
  ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
    MapTaskOut& o = tasks[t];
    StatusOr<Table> mapped = map_fn(std::move(splits[t]), &o.combined);
    if (!mapped.ok()) {
      o.status = mapped.status();
      return;
    }
    o.map_output = static_cast<int64_t>(mapped->num_rows());
    o.buckets.assign(num_reducers, Table(mapped->schema()));
    for (size_t i = 0; i < mapped->num_rows(); ++i) {
      o.buckets[PartitionOf(*mapped, i, key_cols, num_reducers)].AppendRowFrom(
          *mapped, i);
    }
  });
  out->buckets.resize(num_reducers);
  for (MapTaskOut& o : tasks) {
    MUSKETEER_RETURN_IF_ERROR(o.status);
    ++stats->map_tasks;
    stats->map_output_records += o.map_output;
    stats->combined_output_records += o.combined;
    for (int r = 0; r < num_reducers; ++r) {
      out->buckets[r].AppendTable(std::move(o.buckets[r]));
    }
  }
  for (const Table& b : out->buckets) {
    stats->shuffled_records += static_cast<int64_t>(b.num_rows());
  }
  return OkStatus();
}

// ---- combiner support ------------------------------------------------------

// Decomposes aggregations into partial (map-side) and final (reduce-side)
// steps; AVG becomes (SUM, COUNT), COUNT becomes COUNT then SUM.
struct CombinerPlan {
  std::vector<AggSpec> partial;           // run on each map task's output
  std::vector<int> partial_group;         // group columns in the input
  // For final assembly: per original agg, indices of its partial columns
  // (offset *after* the group columns in the partial schema).
  struct FinalAgg {
    AggFn fn;
    int partial_a = 0;   // first partial column
    int partial_b = -1;  // second (AVG count), -1 if unused
  };
  std::vector<FinalAgg> finals;
};

StatusOr<CombinerPlan> PlanCombiner(const std::vector<int>& group_cols,
                                    const std::vector<NamedAgg>& aggs,
                                    const Schema& in_schema) {
  CombinerPlan plan;
  plan.partial_group = group_cols;
  int next = 0;
  for (const NamedAgg& agg : aggs) {
    int col = 0;
    if (agg.fn != AggFn::kCount) {
      auto idx = in_schema.IndexOf(agg.column);
      if (!idx.has_value()) {
        return InvalidArgumentError("AGG column '" + agg.column + "' missing");
      }
      col = *idx;
    }
    CombinerPlan::FinalAgg f;
    f.fn = agg.fn;
    switch (agg.fn) {
      case AggFn::kSum:
      case AggFn::kMin:
      case AggFn::kMax:
        plan.partial.push_back({agg.fn, col, agg.output_name});
        f.partial_a = next++;
        break;
      case AggFn::kCount:
        plan.partial.push_back({AggFn::kCount, col, agg.output_name});
        f.partial_a = next++;
        break;
      case AggFn::kAvg:
        plan.partial.push_back({AggFn::kSum, col, agg.output_name + "__sum"});
        plan.partial.push_back({AggFn::kCount, col, agg.output_name + "__n"});
        f.partial_a = next++;
        f.partial_b = next++;
        break;
    }
    plan.finals.push_back(f);
  }
  return plan;
}

// Merges combined partial rows on the reduce side into the final schema
// produced by the reference GroupByAgg. Group keys are materialized to
// row-of-variants keys: partial tables are tiny (one row per distinct group
// per map task), so the compatibility path costs nothing measurable.
StatusOr<Table> FinalizeCombined(const Table& partial_rows,
                                 const CombinerPlan& plan,
                                 const Schema& out_schema, size_t num_group) {
  struct Acc {
    Row group;
    std::vector<double> sums;
    std::vector<double> mins;
    std::vector<double> maxs;
  };
  size_t num_partial = plan.partial.size();
  std::unordered_map<Row, Acc, RowHash, RowEq> groups;
  for (size_t i = 0; i < partial_rows.num_rows(); ++i) {
    Row key;
    key.reserve(num_group);
    for (size_t c = 0; c < num_group; ++c) {
      key.push_back(partial_rows.ValueAt(i, c));
    }
    Acc& acc = groups[key];
    if (acc.sums.empty()) {
      acc.group = key;
      acc.sums.assign(num_partial, 0.0);
      acc.mins.assign(num_partial, 1e300);
      acc.maxs.assign(num_partial, -1e300);
    }
    for (size_t j = 0; j < num_partial; ++j) {
      double v = AsDouble(partial_rows.ValueAt(i, num_group + j));
      acc.sums[j] += v;  // SUM/COUNT partials merge by summation
      acc.mins[j] = std::min(acc.mins[j], v);
      acc.maxs[j] = std::max(acc.maxs[j], v);
    }
  }
  Table out(out_schema);
  for (auto& [key, acc] : groups) {
    Row row = acc.group;
    for (size_t j = 0; j < plan.finals.size(); ++j) {
      const CombinerPlan::FinalAgg& f = plan.finals[j];
      double v = 0;
      switch (f.fn) {
        case AggFn::kSum:
        case AggFn::kCount:
          v = acc.sums[f.partial_a];
          break;
        case AggFn::kMin:
          v = acc.mins[f.partial_a];
          break;
        case AggFn::kMax:
          v = acc.maxs[f.partial_a];
          break;
        case AggFn::kAvg: {
          double n = acc.sums[f.partial_b];
          v = n > 0 ? acc.sums[f.partial_a] / n : 0;
          break;
        }
      }
      if (out_schema.field(num_group + j).type == FieldType::kInt64) {
        row.push_back(static_cast<int64_t>(v));
      } else {
        row.push_back(v);
      }
    }
    out.AddRow(row);
  }
  return out;
}

// ---- the runtime -----------------------------------------------------------

class MapReduceRuntime {
 public:
  MapReduceRuntime(const MapReduceOptions& options, MapReduceStats* stats)
      : options_(options), stats_(stats) {}

  Status Run(const Dag& dag, const TableMap& base, TableMap* produced) {
    TableMap relations = base;
    std::vector<TablePtr> by_node(dag.num_nodes());
    for (const OperatorNode& node : dag.nodes()) {
      if (node.kind == OpKind::kInput) {
        const auto& p = std::get<InputParams>(node.params);
        auto it = relations.find(p.relation);
        if (it == relations.end()) {
          return NotFoundError("base relation '" + p.relation + "' not provided");
        }
        by_node[node.id] = it->second;
        relations[node.output] = it->second;
        continue;
      }
      if (node.kind == OpKind::kWhile) {
        MUSKETEER_RETURN_IF_ERROR(
            RunWhile(dag, node, base, by_node, &relations, produced));
        continue;
      }
      std::vector<const Table*> inputs;
      for (int i : node.inputs) {
        inputs.push_back(by_node[i].get());
      }
      MUSKETEER_ASSIGN_OR_RETURN(Table result, RunOperator(node, inputs));
      result.set_scale(OutputScale(node, inputs));
      auto table = std::make_shared<Table>(std::move(result));
      by_node[node.id] = table;
      relations[node.output] = table;
      (*produced)[node.output] = table;
    }
    return OkStatus();
  }

 private:
  Status RunWhile(const Dag& dag, const OperatorNode& node, const TableMap& base,
                  std::vector<TablePtr>& by_node, TableMap* relations,
                  TableMap* produced) {
    const auto& p = std::get<WhileParams>(node.params);
    TableMap body_base = base;
    for (size_t i = 0; i < p.bindings.size(); ++i) {
      body_base[p.bindings[i].loop_input] = by_node[node.inputs[i]];
    }
    for (size_t i = p.bindings.size(); i < node.inputs.size(); ++i) {
      body_base[dag.node(node.inputs[i]).output] = by_node[node.inputs[i]];
    }
    TableMap iter_out;
    for (int64_t iter = 0; iter < p.iterations; ++iter) {
      MUSKETEER_RETURN_IF_ERROR(CheckInterrupt());
      iter_out.clear();
      MUSKETEER_RETURN_IF_ERROR(Run(*p.body, body_base, &iter_out));
      bool stable = p.until_fixpoint;
      for (const LoopBinding& b : p.bindings) {
        TablePtr next = iter_out.at(b.body_output);
        stable = stable && Table::SameContent(*body_base[b.loop_input], *next);
        body_base[b.loop_input] = std::move(next);
      }
      if (stable) {
        break;
      }
    }
    TablePtr result = iter_out.at(p.result);
    by_node[node.id] = result;
    (*relations)[node.output] = result;
    (*produced)[node.output] = result;
    return OkStatus();
  }

  // Preserves the scale-propagation rules of the relational kernel.
  static double OutputScale(const OperatorNode& node,
                            const std::vector<const Table*>& inputs) {
    switch (OpSizeBehavior(node.kind)) {
      case SizeBehavior::kAdditive: {
        double rows = 0;
        double nominal = 0;
        for (const Table* t : inputs) {
          rows += static_cast<double>(t->num_rows());
          nominal += t->nominal_rows();
        }
        return rows > 0 ? nominal / rows : inputs[0]->scale();
      }
      case SizeBehavior::kConstant:
        return 1.0;
      default: {
        double scale = 0;
        for (const Table* t : inputs) {
          scale = std::max(scale, t->scale());
        }
        return scale;
      }
    }
  }

  StatusOr<Table> RunOperator(const OperatorNode& node,
                              const std::vector<const Table*>& inputs) {
    if (IsRowwiseOp(node.kind) || node.kind == OpKind::kUnion) {
      return RunMapOnly(node, inputs);
    }
    if (!IsShuffleOp(node.kind)) {
      // UDFs / black boxes run as one opaque task.
      ++stats_->stages;
      ++stats_->map_tasks;
      return EvaluateOperator(node, inputs);
    }
    return RunShuffleStage(node, inputs);
  }

  // Map-only stage: row-wise operators (and UNION's concatenation) applied
  // per input split; no shuffle.
  StatusOr<Table> RunMapOnly(const OperatorNode& node,
                             const std::vector<const Table*>& inputs) {
    ++stats_->stages;
    if (node.kind == OpKind::kUnion) {
      stats_->map_tasks += 2;
      return EvaluateOperator(node, inputs);
    }
    std::vector<Table> splits = SplitTable(*inputs[0], options_.num_mappers);
    struct TaskOut {
      Status status;
      Table table;
    };
    std::vector<TaskOut> parts(splits.size());
    ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
      splits[t].set_scale(inputs[0]->scale());
      StatusOr<Table> part = EvaluateOperator(node, {&splits[t]});
      if (part.ok()) {
        parts[t].table = std::move(*part);
      } else {
        parts[t].status = part.status();
      }
    });
    Table out;
    for (TaskOut& t : parts) {
      MUSKETEER_RETURN_IF_ERROR(t.status);
      ++stats_->map_tasks;
      out.AppendTable(std::move(t.table));
    }
    return out;
  }

  StatusOr<Table> RunShuffleStage(const OperatorNode& node,
                                  const std::vector<const Table*>& inputs) {
    ++stats_->stages;
    switch (node.kind) {
      case OpKind::kGroupBy:
        return RunGroupBy(node, *inputs[0]);
      case OpKind::kJoin:
        return RunJoin(node, *inputs[0], *inputs[1]);
      case OpKind::kDistinct:
      case OpKind::kIntersect:
      case OpKind::kDifference:
        return RunSetOp(node, inputs);
      default:
        return RunGlobal(node, inputs);
    }
  }

  StatusOr<Table> RunGroupBy(const OperatorNode& node, const Table& in) {
    const auto& p = std::get<GroupByParams>(node.params);
    std::vector<int> group_cols;
    for (const std::string& name : p.group_columns) {
      auto idx = in.schema().IndexOf(name);
      if (!idx.has_value()) {
        return InvalidArgumentError("GROUP BY column '" + name + "' missing");
      }
      group_cols.push_back(*idx);
    }
    // Output schema, computed cheaply on an empty input.
    Table empty_in(in.schema());
    MUSKETEER_ASSIGN_OR_RETURN(Table schema_probe,
                               EvaluateOperator(node, {&empty_in}));
    const Schema& out_schema = schema_probe.schema();

    if (!options_.use_combiners) {
      // Plain path: scatter raw rows by group key, reduce with the kernel.
      ShuffleBuckets buckets;
      MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
          in, options_.num_mappers, options_.num_reducers, group_cols,
          [](Table split, int64_t*) { return split; }, &buckets, stats_));
      struct ReduceOut {
        Status status;
        Table table;
      };
      std::vector<ReduceOut> parts(buckets.buckets.size());
      ParallelChunks(buckets.buckets.size(), 1, [&](size_t r, size_t, size_t) {
        if (buckets.buckets[r].num_rows() == 0) {
          return;  // empty partitions contribute nothing
        }
        StatusOr<Table> part = EvaluateOperator(node, {&buckets.buckets[r]});
        if (part.ok()) {
          parts[r].table = std::move(*part);
        } else {
          parts[r].status = part.status();
        }
      });
      Table out(out_schema);
      for (ReduceOut& r : parts) {
        ++stats_->reduce_tasks;
        MUSKETEER_RETURN_IF_ERROR(r.status);
        out.AppendTable(std::move(r.table));
      }
      if (group_cols.empty() && out.num_rows() == 0) {
        return EvaluateOperator(node, {&in});  // global agg over empty input
      }
      return out;
    }

    // Combiner path: per-map partial aggregation, reduce merges partials.
    // Partial rows lead with the group columns.
    MUSKETEER_ASSIGN_OR_RETURN(CombinerPlan plan,
                               PlanCombiner(group_cols, p.aggs, in.schema()));
    std::vector<int> partial_key_cols(group_cols.size());
    for (size_t i = 0; i < group_cols.size(); ++i) {
      partial_key_cols[i] = static_cast<int>(i);
    }
    ShuffleBuckets buckets;
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        in, options_.num_mappers, options_.num_reducers, partial_key_cols,
        [&](Table split, int64_t* combined) -> StatusOr<Table> {
          if (split.num_rows() == 0) {
            return Table(split.schema());
          }
          MUSKETEER_ASSIGN_OR_RETURN(Table partial,
                                     GroupByAgg(split, group_cols, plan.partial));
          *combined += static_cast<int64_t>(partial.num_rows());
          return partial;
        },
        &buckets, stats_));

    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> parts(buckets.buckets.size());
    ParallelChunks(buckets.buckets.size(), 1, [&](size_t r, size_t, size_t) {
      if (buckets.buckets[r].num_rows() == 0) {
        return;
      }
      StatusOr<Table> part = FinalizeCombined(buckets.buckets[r], plan,
                                              out_schema, group_cols.size());
      if (part.ok()) {
        parts[r].table = std::move(*part);
      } else {
        parts[r].status = part.status();
      }
    });
    Table out(out_schema);
    for (ReduceOut& r : parts) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      out.AppendTable(std::move(r.table));
    }
    if (group_cols.empty() && out.num_rows() == 0) {
      return EvaluateOperator(node, {&in});
    }
    return out;
  }

  StatusOr<Table> RunJoin(const OperatorNode& node, const Table& left,
                          const Table& right) {
    const auto& p = std::get<JoinParams>(node.params);
    auto li = left.schema().IndexOf(p.left_key);
    auto ri = right.schema().IndexOf(p.right_key);
    if (!li.has_value() || !ri.has_value()) {
      return InvalidArgumentError("JOIN key missing in MapReduce stage");
    }
    ShuffleBuckets lbuckets;
    ShuffleBuckets rbuckets;
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        left, options_.num_mappers, options_.num_reducers, {*li},
        [](Table s, int64_t*) { return s; }, &lbuckets, stats_));
    MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
        right, options_.num_mappers, options_.num_reducers, {*ri},
        [](Table s, int64_t*) { return s; }, &rbuckets, stats_));
    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> parts(options_.num_reducers);
    ParallelChunks(parts.size(), 1, [&](size_t r, size_t, size_t) {
      StatusOr<Table> part =
          HashJoin(lbuckets.buckets[r], rbuckets.buckets[r], *li, *ri);
      if (part.ok()) {
        parts[r].table = std::move(*part);
      } else {
        parts[r].status = part.status();
      }
    });
    Table out;
    for (ReduceOut& r : parts) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      out.AppendTable(std::move(r.table));
    }
    return out;
  }

  StatusOr<Table> RunSetOp(const OperatorNode& node,
                           const std::vector<const Table*>& inputs) {
    // Whole-row keys: co-partition all inputs and apply the kernel per
    // reducer (identical rows meet on the same reducer).
    std::vector<int> key_cols;
    for (size_t c = 0; c < inputs[0]->schema().num_fields(); ++c) {
      key_cols.push_back(static_cast<int>(c));
    }
    std::vector<ShuffleBuckets> buckets(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i]->schema().num_fields() != inputs[0]->schema().num_fields()) {
        return InvalidArgumentError("set-operation arity mismatch");
      }
      MUSKETEER_RETURN_IF_ERROR(MapAndScatter(
          *inputs[i], options_.num_mappers, options_.num_reducers, key_cols,
          [](Table s, int64_t*) { return s; }, &buckets[i], stats_));
    }
    struct ReduceOut {
      Status status;
      Table table;
    };
    std::vector<ReduceOut> results(options_.num_reducers);
    ParallelChunks(results.size(), 1, [&](size_t r, size_t, size_t) {
      std::vector<const Table*> part_ptrs;
      for (size_t i = 0; i < inputs.size(); ++i) {
        part_ptrs.push_back(&buckets[i].buckets[r]);
      }
      StatusOr<Table> part = EvaluateOperator(node, part_ptrs);
      if (part.ok()) {
        results[r].table = std::move(*part);
      } else {
        results[r].status = part.status();
      }
    });
    Table out(inputs[0]->schema());
    for (ReduceOut& r : results) {
      ++stats_->reduce_tasks;
      MUSKETEER_RETURN_IF_ERROR(r.status);
      out.AppendTable(std::move(r.table));
    }
    return out;
  }

  // Global operators (AGG, MAX, MIN, TOP-N, SORT, CROSS JOIN): a map-side
  // pre-reduction where valid, then a single reduce task.
  StatusOr<Table> RunGlobal(const OperatorNode& node,
                            const std::vector<const Table*>& inputs) {
    bool pre_reducible = node.kind == OpKind::kMax || node.kind == OpKind::kMin ||
                         node.kind == OpKind::kTopN;
    if (pre_reducible && options_.use_combiners) {
      std::vector<Table> splits = SplitTable(*inputs[0], options_.num_mappers);
      struct TaskOut {
        Status status;
        Table table;
      };
      std::vector<TaskOut> parts(splits.size());
      ParallelChunks(splits.size(), 1, [&](size_t t, size_t, size_t) {
        if (splits[t].num_rows() == 0) {
          return;
        }
        StatusOr<Table> part = EvaluateOperator(node, {&splits[t]});
        if (part.ok()) {
          parts[t].table = std::move(*part);
        } else {
          parts[t].status = part.status();
        }
      });
      Table gathered(inputs[0]->schema());
      for (TaskOut& t : parts) {
        ++stats_->map_tasks;
        MUSKETEER_RETURN_IF_ERROR(t.status);
        stats_->combined_output_records +=
            static_cast<int64_t>(t.table.num_rows());
        gathered.AppendTable(std::move(t.table));
      }
      ++stats_->reduce_tasks;
      stats_->shuffled_records += static_cast<int64_t>(gathered.num_rows());
      return EvaluateOperator(node, {&gathered});
    }
    ++stats_->map_tasks;
    ++stats_->reduce_tasks;
    for (const Table* t : inputs) {
      stats_->shuffled_records += static_cast<int64_t>(t->num_rows());
    }
    return EvaluateOperator(node, inputs);
  }

  MapReduceOptions options_;
  MapReduceStats* stats_;
};

}  // namespace

StatusOr<MapReduceResult> ExecuteViaMapReduce(const Dag& dag, const TableMap& base,
                                              const MapReduceOptions& options) {
  MapReduceResult result;
  MapReduceRuntime runtime(options, &result.stats);
  MUSKETEER_RETURN_IF_ERROR(runtime.Run(dag, base, &result.relations));
  return result;
}

}  // namespace musketeer
