#include "src/service/shard_coordinator.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <unordered_map>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/stream/fingerprint.h"

namespace musketeer {

namespace {

// Mirrors Musketeer's deadline/context construction so a sharded run honors
// the exact same cancellation, deadline, fault-seed and backoff semantics.
DeadlinePoint EffectiveDeadline(const RunOptions& options) {
  if (options.absolute_deadline.has_value()) {
    return options.absolute_deadline;
  }
  if (options.deadline.count() > 0) {
    return std::chrono::steady_clock::now() + options.deadline;
  }
  return std::nullopt;
}

ExecutionContext MakeContext(const WorkflowSpec& workflow,
                             const RunOptions& options) {
  ExecutionContext ctx;
  ctx.workflow_id = workflow.id;
  ctx.cancel = options.cancel;
  ctx.deadline = EffectiveDeadline(options);
  ctx.faults = FaultInjector(options.fault_rate, options.fault_seed);
  ctx.retry = options.retry;
  if (ctx.retry.backoff_seed == 0) {
    ctx.retry.backoff_seed = options.fault_seed;
  }
  return ctx;
}

}  // namespace

ShardCoordinator::ShardCoordinator(ShardedDfs* dfs, CoordinatorConfig config)
    : dfs_(dfs),
      config_(std::move(config)),
      placer_(&dfs->shard_map(), config_.placement, config_.placement_seed) {
  const int count = dfs_->num_shards();
  shards_.reserve(static_cast<size_t>(count));
  alive_.assign(static_cast<size_t>(count), 1);
  jobs_per_shard_.assign(static_cast<size_t>(count), 0);
  for (int k = 0; k < count; ++k) {
    ServiceConfig sc;
    sc.num_workers = std::max(1, config_.workers_per_shard);
    sc.threads = config_.threads;
    sc.plan_cache_capacity = 0;  // shards execute jobs, they do not plan
    shards_.push_back(
        std::make_unique<WorkflowService>(dfs_->View(k), std::move(sc)));
  }
}

ShardCoordinator::~ShardCoordinator() {
  for (auto& shard : shards_) {
    shard->Shutdown();
  }
}

std::vector<int> ShardCoordinator::AliveShardsLocked() const {
  std::vector<int> out;
  for (size_t k = 0; k < alive_.size(); ++k) {
    if (alive_[k]) {
      out.push_back(static_cast<int>(k));
    }
  }
  return out;
}

void ShardCoordinator::KillShardLocked(int shard) {
  if (shard < 0 || shard >= num_shards() || !alive_[static_cast<size_t>(shard)]) {
    return;
  }
  alive_[static_cast<size_t>(shard)] = 0;
  // Placement only: the partition's data survives (reads fall back to the
  // directory-repairing scan), which is what keeps failover bit-identical.
  dfs_->shard_map().RemoveShard(shard);
  MLOG_INFO << "shard " << shard << " removed from placement";
}

void ShardCoordinator::DrainShard(int shard) {
  std::lock_guard lock(mu_);
  KillShardLocked(shard);
}

bool ShardCoordinator::IsShardAlive(int shard) const {
  std::lock_guard lock(mu_);
  return shard >= 0 && shard < num_shards() &&
         alive_[static_cast<size_t>(shard)] != 0;
}

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats out;
  {
    std::lock_guard lock(mu_);
    out.jobs_dispatched = dispatches_;
    out.placements = placer_.placements();
    out.locality_hits = placer_.locality_hits();
    out.placed_cross_shard_bytes = placer_.cross_shard_bytes();
    out.shard_failovers = shard_failovers_;
    out.jobs_per_shard = jobs_per_shard_;
  }
  out.remote_fetches = dfs_->remote_fetches();
  out.remote_bytes_fetched = dfs_->remote_bytes_fetched();
  out.measured_remote_mbps = dfs_->measured_remote_mbps();
  return out;
}

StatusOr<JobResult> ShardCoordinator::DispatchAttempt(
    const WorkflowPlan& plan, const std::vector<int>& ops, const JobPlan& job,
    const ExecutionContext& ctx, const RunOptions& options,
    const CostModel& model, const std::vector<Bytes>& sizes,
    RunResult* result) {
  // Placement inputs: the job's declared input relations at their *actual*
  // current nominal sizes (upstream jobs have already committed).
  std::vector<std::pair<std::string, Bytes>> inputs;
  inputs.reserve(job.inputs.size());
  for (const std::string& name : job.inputs) {
    auto table = dfs_->Get(name);
    inputs.emplace_back(name, table.ok() ? (*table)->nominal_bytes() : 0);
  }

  PlacementDecision decision;
  int shard = -1;
  {
    std::lock_guard lock(mu_);
    ++dispatches_;
    // Seeded shard fault: a deterministic point in the dispatch sequence at
    // which the victim's compute dies. Placement-visible immediately.
    if (config_.fault_shard >= 0 && !fault_fired_ &&
        dispatches_ > static_cast<uint64_t>(config_.fault_after_dispatches)) {
      fault_fired_ = true;
      KillShardLocked(config_.fault_shard);
    }
    std::vector<int> candidates = AliveShardsLocked();
    if (candidates.empty()) {
      return FailedPreconditionError("no shard left alive to place job '" +
                                     job.name + "'");
    }
    if (config_.placement == PlacementPolicy::kLocality) {
      // Next-cheapest-shard ranking: JobCost with the ShardLocality term —
      // identical engine cost everywhere, plus measured-rate transfer
      // seconds for inputs the candidate does not own. Argmin is therefore
      // the shard holding the most input bytes; after a shard death the
      // runner-up is, by construction, the next-cheapest.
      const double remote_mbps = dfs_->measured_remote_mbps();
      int best_shard = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int k : candidates) {
        ShardLocality locality{&dfs_->shard_map(), k, remote_mbps};
        const double cost =
            model.JobCost(*plan.dag, ops, job.engine, sizes, &locality);
        if (cost < best_cost) {
          best_cost = cost;
          best_shard = k;
        }
      }
      decision = best_shard >= 0
                     ? placer_.Adopt(inputs, candidates, best_shard)
                     : placer_.Place(job.name, inputs, candidates);
    } else {
      decision = placer_.Place(job.name, inputs, candidates);
    }
    shard = decision.shard;
    ++jobs_per_shard_[static_cast<size_t>(shard)];
  }

  // Route the attempt to the placed shard's worker pool and wait for it.
  // The per-job DFS byte deltas are harvested with a thread-scoped counter
  // *on the worker thread* (the coordinator thread never touches the DFS
  // during execution), then folded into the run totals here.
  struct TaskOutcome {
    StatusOr<JobResult> result = InternalError("shard task did not run");
    Bytes read = 0;
    Bytes written = 0;
    Bytes remote = 0;
  };
  TaskOutcome out;
  std::promise<void> done;
  std::future<void> done_future = done.get_future();
  ExecutionContext shard_ctx = ctx;
  shard_ctx.shard = shard;
  const bool accepted = shards_[static_cast<size_t>(shard)]->SubmitTask(
      [this, &job, &options, &shard_ctx, &out, &done, shard] {
        ScopedDfsRunCounters scope;
        out.result =
            ExecuteJob(job, options.cluster, dfs_->View(shard), shard_ctx);
        out.read = scope.bytes_read();
        out.written = scope.bytes_written();
        out.remote = scope.bytes_remote_read();
        done.set_value();
      });
  if (!accepted) {
    std::lock_guard lock(mu_);
    ++shard_failovers_;
    return UnavailableError("shard " + std::to_string(shard) +
                            " rejected job '" + job.name + "' (shut down)");
  }
  done_future.wait();

  result->dfs_bytes_read += out.read;
  result->dfs_bytes_written += out.written;
  result->dfs_bytes_remote_read += out.remote;

  if (!out.result.ok()) {
    // A dead shard surfaces as a retryable failure; the dispatcher's next
    // attempt re-places among the survivors (next-cheapest shard).
    std::lock_guard lock(mu_);
    if (!alive_[static_cast<size_t>(shard)]) {
      ++shard_failovers_;
    }
  }
  return out.result;
}

StatusOr<RunResult> ShardCoordinator::Run(const WorkflowSpec& workflow) {
  return Run(workflow, config_.default_options);
}

StatusOr<RunResult> ShardCoordinator::Run(const WorkflowSpec& workflow,
                                          RunOptions options) {
  // Plan once, globally: the planner's Dfs view treats every relation as
  // local, so the plan is identical to an unsharded run's — placement, not
  // planning, is where shards enter.
  options.absolute_deadline = EffectiveDeadline(options);
  Musketeer planner(dfs_);
  MUSKETEER_ASSIGN_OR_RETURN(WorkflowPlan plan, planner.Plan(workflow, options));

  RunResult result;
  result.partitioning = plan.partitioning;
  result.plans = plan.plans;
  result.optimizer_stats = plan.optimizer_stats;
  result.partition_strategy = plan.partitioning.strategy;

  Span exec_span("stage.shard_execute", "stage");
  ExecutionContext ctx = MakeContext(workflow, options);

  // Cost/size basis for placement ranking — the same model construction
  // Plan() used, so shard choice and partitioning share one cost basis.
  RuntimeCalibration calibration;
  if (options.runtime_history != nullptr) {
    calibration = options.runtime_history->Calibration();
  }
  CostModel model(options.cluster, options.history, workflow.id,
                  options.conservative_first_run,
                  calibration.has_observations ? &calibration : nullptr);
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                             model.PredictSizes(*plan.dag, planner.DfsSizes()));

  std::unordered_map<std::string, SimSeconds> ready_at;
  SimSeconds makespan = 0;
  int predicted_jobs = 0;
  double error_sum = 0;
  int replans_done = 0;
  static Counter& reused_metric =
      MetricsRegistry::Global().counter("musketeer.stream.jobs_reused");
  static Counter& recomputed_metric =
      MetricsRegistry::Global().counter("musketeer.stream.jobs_recomputed");
  for (size_t i = 0; i < result.plans.size(); ++i) {
    JobPlan& job = result.plans[i];
    SimSeconds start = 0;
    for (const std::string& in : job.inputs) {
      auto it = ready_at.find(in);
      if (it != ready_at.end()) {
        start = std::max(start, it->second);
      }
    }

    // Incremental reuse, exactly as the unsharded Execute does it: the
    // fingerprint is taken over the *global* DFS view, so a shard-failover
    // re-put (which bumps the aggregate version) invalidates reuse the same
    // way an overwrite does on one node. Placement never sees reused jobs.
    if (options.incremental && options.fingerprints != nullptr &&
        options.fingerprints->CanReuse(workflow.id, job.name,
                                       FingerprintJob(workflow.id, job, *dfs_),
                                       *dfs_)) {
      JobResult jr;
      jr.reused = true;
      jr.internal_jobs = 0;
      jr.detail = "[" + std::string(EngineKindName(job.engine)) + "] " +
                  job.name +
                  ": reused (fingerprint match, " +
                  std::to_string(job.outputs.size()) +
                  " output(s) served from the DFS)";
      MLOG_INFO << jr.detail;
      JobRecovery recovery;
      recovery.job = job.name;
      recovery.planned_engine = job.engine;
      recovery.final_engine = job.engine;
      recovery.attempts = 0;
      result.recovery.push_back(std::move(recovery));
      ++result.jobs_reused;
      reused_metric.Increment();
      for (const std::string& out : job.outputs) {
        ready_at[out] = start;
      }
      makespan = std::max(makespan, start);
      result.job_results.push_back(std::move(jr));
      continue;
    }

    JobDispatchEnv env;
    env.workflow = &workflow;
    env.plan = &plan;
    env.job_index = i;
    env.options = &options;
    // Read the run's own job list: a mid-run replan (below) rewrites the
    // tail, and the shared plan's job boundaries no longer match after it.
    env.ops = &result.partitioning.jobs[i].ops;
    env.run_attempt = [&](const JobPlan& j, const ExecutionContext& c) {
      return DispatchAttempt(plan, result.partitioning.jobs[i].ops, j, c,
                             options, model, sizes, &result);
    };
    env.dfs_sizes = [&] { return planner.DfsSizes(); };
    MUSKETEER_ASSIGN_OR_RETURN(JobDispatchOutcome outcome,
                               DispatchJobWithRecovery(&job, &ctx, env));
    JobResult jr = std::move(outcome.result);
    result.total_retries += outcome.retries;
    result.total_failovers += outcome.failovers;
    result.total_faults_injected += outcome.recovery.faults_injected;
    result.recovery.push_back(std::move(outcome.recovery));
    MLOG_INFO << jr.detail;

    if (options.fingerprints != nullptr) {
      // Post-commit: the aggregate versions recorded here are exactly what
      // the next resubmission's pre-dispatch fingerprint will observe.
      std::vector<std::pair<std::string, uint64_t>> outs;
      outs.reserve(job.outputs.size());
      for (const std::string& out : job.outputs) {
        outs.emplace_back(out, dfs_->VersionOf(out));
      }
      options.fingerprints->Record(workflow.id, job.name,
                                   FingerprintJob(workflow.id, job, *dfs_),
                                   std::move(outs));
      if (options.incremental) {
        recomputed_metric.Increment();
      }
    }

    bool job_measured = false;
    double job_predicted = 0;
    if (options.runtime_history != nullptr) {
      const std::string engine = EngineKindName(job.engine);
      const std::string signature = job.name + "@" + engine;
      double predicted = options.runtime_history->PredictWallSeconds(
          workflow.id, signature, engine, jr.makespan);
      result.predicted_wall_seconds += predicted;
      result.measured_wall_seconds += jr.wall_seconds;
      error_sum += std::abs(predicted - jr.wall_seconds) /
                   std::max(jr.wall_seconds, 1e-9);
      ++predicted_jobs;
      options.runtime_history->RecordJob(workflow.id, signature, engine,
                                         jr.makespan, jr.wall_seconds);
      job_measured = true;
      job_predicted = predicted;
    }
    const double job_wall = jr.wall_seconds;
    SimSeconds finish = start + jr.makespan;
    for (const std::string& out : job.outputs) {
      ready_at[out] = finish;
    }
    makespan = std::max(makespan, finish);
    result.total_engine_time += jr.makespan;
    result.job_results.push_back(std::move(jr));
    // Online re-planning, mirroring Musketeer::Execute: a badly mispredicted
    // job triggers a re-partition of the not-yet-run suffix with the freshly
    // recalibrated cost model. The shared plan is untouched; only the run's
    // own partitioning/plans tail is spliced — which is why this happens
    // after the last use of the `job` reference, whose storage the splice
    // may reallocate. Placement then operates on the new job boundaries
    // (env.ops above reads the run's list).
    if (job_measured && options.planner.replan_threshold > 0 &&
        replans_done < std::max(0, options.planner.max_replans) &&
        plan.dag != nullptr &&
        RuntimeHistory::ErrorRatio(job_predicted, job_wall) >
            options.planner.replan_threshold &&
        result.plans.size() - (i + 1) >= 2) {
      std::vector<int> remaining_ops;
      for (size_t j = i + 1; j < result.plans.size(); ++j) {
        const std::vector<int>& job_ops = result.partitioning.jobs[j].ops;
        remaining_ops.insert(remaining_ops.end(), job_ops.begin(),
                             job_ops.end());
      }
      RuntimeCalibration recal = options.runtime_history->Calibration();
      CostModel remodel(options.cluster, options.history, workflow.id,
                        options.conservative_first_run,
                        recal.has_observations ? &recal : nullptr);
      PlannerConfig pconfig = options.planner;
      if (pconfig.engines.empty()) {
        pconfig.engines = options.engines;
      }
      auto resizes = remodel.PredictSizes(*plan.dag, planner.DfsSizes());
      auto repart = resizes.ok()
                        ? PartitionRemainder(*plan.dag, remodel, *resizes,
                                             pconfig, remaining_ops)
                        : resizes.status();
      if (repart.ok()) {
        std::vector<JobPlan> new_plans;
        new_plans.reserve(repart->jobs.size());
        bool generated = true;
        for (const JobAssignment& assignment : repart->jobs) {
          auto jp = BackendFor(assignment.engine)
                        .GeneratePlan(*plan.dag, assignment.ops,
                                      plan.base_schemas, options.codegen);
          if (!jp.ok()) {
            generated = false;  // best-effort: keep the original tail
            break;
          }
          new_plans.push_back(std::move(jp).value());
        }
        if (generated) {
          MLOG_INFO << "re-planning " << (result.plans.size() - (i + 1))
                    << " remaining job(s) of '" << workflow.id << "' into "
                    << new_plans.size() << " (prediction off by "
                    << RuntimeHistory::ErrorRatio(job_predicted, job_wall)
                    << "x, threshold " << options.planner.replan_threshold
                    << ")";
          result.partitioning.jobs.resize(i + 1);
          for (JobAssignment& assignment : repart->jobs) {
            result.partitioning.jobs.push_back(std::move(assignment));
          }
          result.plans.resize(i + 1);
          for (JobPlan& jp : new_plans) {
            result.plans.push_back(std::move(jp));
          }
          ++result.replans;
          ++replans_done;
        }
      }
    }
  }
  result.makespan = makespan;
  if (predicted_jobs > 0) {
    result.cost_model_error = error_sum / predicted_jobs;
  }
  if (exec_span.active()) {
    exec_span.SetAttr("workflow", workflow.id);
    exec_span.SetAttr("jobs", std::to_string(result.plans.size()));
    exec_span.SetAttr("shards", std::to_string(num_shards()));
  }

  // Sinks resolve through the global view — wherever a shard put them.
  for (const std::string& name : plan.sink_relations) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      result.outputs[name] = *table;
    }
  }

  // History recording, exactly as the unsharded Execute does it.
  if (options.history != nullptr) {
    for (const JobPlan& job : result.plans) {
      for (const std::string& out : job.outputs) {
        auto table = dfs_->Get(out);
        if (table.ok()) {
          options.history->Record(workflow.id, out, (*table)->nominal_bytes());
        }
      }
    }
    for (const JobResult& jr : result.job_results) {
      for (const auto& [relation, bytes] : jr.observed_sizes) {
        options.history->Record(workflow.id, relation, bytes);
      }
    }
  }
  return result;
}

}  // namespace musketeer
