// Cross-shard workflow fan-out (PR 8 tentpole).
//
// The ShardCoordinator is the front of a sharded Musketeer deployment: one
// ShardedDfs (M partitions behind a ShardMap directory) and M in-process
// WorkflowService shard instances, each executing against its own per-shard
// DFS view. A workflow is planned ONCE against the global namespace —
// parse→optimize→partition→codegen are shard-agnostic — and then each job of
// the plan is *placed*:
//
//   - kLocality (default): the job goes to the alive shard with the lowest
//     CostModel::JobCost under a ShardLocality term, i.e. the shard that
//     minimizes cross-shard input transfer at the *measured* DFS byte rate.
//     In practice that is the shard owning the majority of the job's input
//     bytes; its outputs are then pinned there (placement-near-data), so
//     consumer jobs chain onto the same shard unless a bigger input pulls
//     them elsewhere.
//   - kRandom: seeded hash of the job name — the locality-blind control arm
//     bench_shard_scaling compares against.
//
// Dispatch rides the PR 5 recovery loop (src/core/job_dispatch.h): per-engine
// retries, cross-engine failover — and, new here, next-cheapest-shard
// failover. A dead shard (DrainShard, or the seeded shard-fault config)
// surfaces as a retryable kUnavailable; the re-attempt re-places among the
// shards still alive, which the cost ranking makes the next-cheapest choice.
// The dead shard's DFS partition survives (the HDFS-replication stand-in):
// reads fall back to a directory-repairing scan, so results stay
// Table::Identical to the 1-shard run even across failovers.

#ifndef MUSKETEER_SRC_SERVICE_SHARD_COORDINATOR_H_
#define MUSKETEER_SRC_SERVICE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/sharded_dfs.h"
#include "src/core/job_dispatch.h"
#include "src/core/musketeer.h"
#include "src/scheduler/placement.h"
#include "src/service/service.h"

namespace musketeer {

struct CoordinatorConfig {
  PlacementPolicy placement = PlacementPolicy::kLocality;
  uint64_t placement_seed = 0;  // kRandom's determinism knob
  // Worker pool and intra-query width of each shard's WorkflowService.
  int workers_per_shard = 2;
  int threads = 0;
  // Seeded shard-fault injection: once the coordinator has dispatched
  // `fault_after_dispatches` jobs, shard `fault_shard`'s compute dies — it
  // is removed from placement and an attempt already routed to it fails
  // retryably. Its DFS partition stays readable. -1 disables.
  int fault_shard = -1;
  int fault_after_dispatches = 0;
  // Applied to Run(workflow) calls that carry no options.
  RunOptions default_options;
};

struct CoordinatorStats {
  uint64_t jobs_dispatched = 0;
  uint64_t placements = 0;
  uint64_t locality_hits = 0;       // chose a byte-optimal shard
  Bytes placed_cross_shard_bytes = 0;  // placer's accounting at decision time
  uint64_t shard_failovers = 0;     // attempts re-placed off a dead shard
  std::vector<uint64_t> jobs_per_shard;
  // Mirrors of the ShardedDfs fetch accounting (measured, not predicted).
  uint64_t remote_fetches = 0;
  Bytes remote_bytes_fetched = 0;
  double measured_remote_mbps = 0;
};

class ShardCoordinator {
 public:
  // `dfs` is the sharded storage layer; not owned, must outlive the
  // coordinator. One WorkflowService is spun up per DFS shard.
  explicit ShardCoordinator(ShardedDfs* dfs, CoordinatorConfig config = {});
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  // Plans `workflow` against the global namespace and fans its jobs out
  // across the shards by placement. Blocking; jobs dispatch in dependency
  // order and the returned RunResult is byte-for-byte comparable to an
  // unsharded Musketeer::Run (same makespan accounting, outputs
  // Table::Identical at any shard count).
  StatusOr<RunResult> Run(const WorkflowSpec& workflow);
  StatusOr<RunResult> Run(const WorkflowSpec& workflow, RunOptions options);

  // Removes a shard from placement (its partition stays readable); jobs
  // re-place onto the remaining shards. Idempotent.
  void DrainShard(int shard);
  bool IsShardAlive(int shard) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardedDfs* dfs() { return dfs_; }
  WorkflowService& shard_service(int shard) { return *shards_[shard]; }

  CoordinatorStats stats() const;

 private:
  // One dispatch attempt: place `job` (whose operator set is `ops` — the
  // run's possibly re-planned set, not the shared plan's), route it to the
  // placed shard's service, harvest the per-job DFS byte deltas into the
  // run totals.
  StatusOr<JobResult> DispatchAttempt(const WorkflowPlan& plan,
                                      const std::vector<int>& ops,
                                      const JobPlan& job,
                                      const ExecutionContext& ctx,
                                      const RunOptions& options,
                                      const CostModel& model,
                                      const std::vector<Bytes>& sizes,
                                      RunResult* result);

  std::vector<int> AliveShardsLocked() const;  // requires mu_
  void KillShardLocked(int shard);             // requires mu_

  ShardedDfs* const dfs_;
  const CoordinatorConfig config_;
  ShardPlacer placer_;  // guarded by mu_ (stats are plain members)
  std::vector<std::unique_ptr<WorkflowService>> shards_;

  mutable std::mutex mu_;
  std::vector<char> alive_;       // guarded by mu_
  uint64_t dispatches_ = 0;       // guarded by mu_
  uint64_t shard_failovers_ = 0;  // guarded by mu_
  bool fault_fired_ = false;      // guarded by mu_
  std::vector<uint64_t> jobs_per_shard_;  // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SERVICE_SHARD_COORDINATOR_H_
