// Multi-tenant bounded queue with weighted fair scheduling and per-tenant
// admission control — the scheduling heart of the network front door.
//
// BoundedQueue (queue.h) gives one FIFO lane; a shared server needs one lane
// per tenant so a single heavy submitter cannot starve everyone behind it.
// FairQueue keeps a deque per tenant and picks the next item by stride
// scheduling: each tenant carries a virtual-time "pass", the eligible tenant
// with the smallest pass is served next, and serving advances its pass by
// 1/weight — so over any busy window tenants drain in proportion to their
// weights (weight 2 dequeues twice as often as weight 1), while a lone
// tenant degenerates to plain FIFO, preserving the single-tenant service
// semantics exactly.
//
// Admission control distinguishes two rejection causes so the HTTP edge can
// map them onto different status codes:
//   * kTenantOverQuota — the tenant exceeded its own max_queued bound
//     (HTTP 429: the client is over its allowance; others are unaffected);
//   * kQueueFull — the shared queue hit global capacity
//     (HTTP 503: the service as a whole is saturated).
// max_in_flight additionally caps how many of a tenant's items may be
// checked out (popped, not yet finished) at once: a tenant at its cap keeps
// its items queued and other tenants are served around it. Pop() and
// OnFinished() form a strict pair — every successful Pop must be matched by
// exactly one OnFinished(tenant) or eligibility accounting wedges.
//
// Thread-safety: one mutex, two condition variables (producer/consumer),
// exactly like BoundedQueue; Close() makes the queue drain-only and wakes
// every waiter.

#ifndef MUSKETEER_SRC_SERVICE_FAIR_QUEUE_H_
#define MUSKETEER_SRC_SERVICE_FAIR_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace musketeer {

// Per-tenant scheduling weight and admission bounds. The zero values mean
// "unlimited": a default-constructed quota schedules at weight 1 with no
// per-tenant cap, which is the pre-tenant service behavior.
struct TenantQuota {
  int weight = 1;           // relative dequeue share; clamped to >= 1
  size_t max_queued = 0;    // queued items per tenant; 0 = global bound only
  int max_in_flight = 0;    // popped-not-finished items; 0 = unlimited
};

enum class AdmitResult {
  kOk,
  kQueueFull,         // shared capacity exhausted (503)
  kTenantOverQuota,   // this tenant's max_queued exhausted (429)
  kClosed,            // queue shut down
};

template <typename T>
class FairQueue {
 public:
  struct Popped {
    std::string tenant;
    T item;
  };

  explicit FairQueue(size_t capacity) : capacity_(capacity) {}

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  // Registers `quota` for `tenant`; submissions from unregistered tenants use
  // the default quota. Safe to call while the queue is live; applies to
  // subsequent admissions and pops.
  void SetQuota(const std::string& tenant, TenantQuota quota) {
    std::lock_guard lock(mu_);
    Lane& lane = LaneFor(tenant);
    lane.quota = Clamp(quota);
  }

  void SetDefaultQuota(TenantQuota quota) {
    std::lock_guard lock(mu_);
    default_quota_ = Clamp(quota);
  }

  // Non-blocking admission.
  AdmitResult TryPush(const std::string& tenant, T item) {
    std::unique_lock lock(mu_);
    AdmitResult verdict = Admissible(tenant);
    if (verdict != AdmitResult::kOk) {
      return verdict;
    }
    Accept(tenant, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return AdmitResult::kOk;
  }

  // Blocking admission: waits for queue space (global *and* this tenant's
  // max_queued allowance) instead of rejecting; kClosed if the queue shuts
  // down while waiting.
  AdmitResult Push(const std::string& tenant, T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || Admissible(tenant) == AdmitResult::kOk;
    });
    if (closed_) {
      return AdmitResult::kClosed;
    }
    Accept(tenant, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return AdmitResult::kOk;
  }

  // Blocks until some tenant is eligible (queued work and in-flight headroom);
  // nullopt once the queue is closed *and* fully drained. The caller must
  // pair every Popped with one OnFinished(popped.tenant).
  std::optional<Popped> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] {
      return (closed_ && total_queued_ == 0) || PickEligible() != nullptr;
    });
    auto [name, lane] = PickEligibleNamed();
    if (lane == nullptr) {
      return std::nullopt;  // closed and drained
    }
    Popped out{name, std::move(lane->items.front())};
    lane->items.pop_front();
    --total_queued_;
    ++lane->in_flight;
    // Advance virtual time to the served tenant, then charge it one quantum
    // scaled by weight — the stride-scheduling core.
    virtual_time_ = lane->pass;
    lane->pass += 1.0 / lane->quota.weight;
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  // Releases one in-flight slot for `tenant`, possibly making its queued
  // items eligible again.
  void OnFinished(const std::string& tenant) {
    {
      std::lock_guard lock(mu_);
      Lane& lane = LaneFor(tenant);
      assert(lane.in_flight > 0 && "OnFinished without a matching Pop");
      --lane.in_flight;
    }
    not_empty_.notify_all();
  }

  // Makes the queue reject new items and wakes all waiters; queued items
  // still drain through Pop. Idempotent.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return total_queued_;
  }

  size_t capacity() const { return capacity_; }

  size_t QueuedFor(const std::string& tenant) const {
    std::lock_guard lock(mu_);
    auto it = lanes_.find(tenant);
    return it == lanes_.end() ? 0 : it->second.items.size();
  }

  int InFlightFor(const std::string& tenant) const {
    std::lock_guard lock(mu_);
    auto it = lanes_.find(tenant);
    return it == lanes_.end() ? 0 : it->second.in_flight;
  }

 private:
  struct Lane {
    std::deque<T> items;
    TenantQuota quota;
    int in_flight = 0;
    double pass = 0;  // stride-scheduling virtual time
  };

  static TenantQuota Clamp(TenantQuota quota) {
    quota.weight = std::max(quota.weight, 1);
    return quota;
  }

  Lane& LaneFor(const std::string& tenant) {
    auto [it, inserted] = lanes_.try_emplace(tenant);
    if (inserted) {
      it->second.quota = default_quota_;
    }
    return it->second;
  }

  AdmitResult Admissible(const std::string& tenant) {
    if (closed_) {
      return AdmitResult::kClosed;
    }
    if (total_queued_ >= capacity_) {
      return AdmitResult::kQueueFull;
    }
    Lane& lane = LaneFor(tenant);
    if (lane.quota.max_queued > 0 &&
        lane.items.size() >= lane.quota.max_queued) {
      return AdmitResult::kTenantOverQuota;
    }
    return AdmitResult::kOk;
  }

  void Accept(const std::string& tenant, T item) {
    Lane& lane = LaneFor(tenant);
    if (lane.items.empty()) {
      // A tenant (re)entering the busy set must not have banked credit from
      // its idle time: start at the current virtual time, keeping any debt
      // from its own recent dequeues.
      lane.pass = std::max(lane.pass, virtual_time_);
    }
    lane.items.push_back(std::move(item));
    ++total_queued_;
  }

  bool Eligible(const Lane& lane) const {
    return !lane.items.empty() &&
           (lane.quota.max_in_flight == 0 ||
            lane.in_flight < lane.quota.max_in_flight);
  }

  Lane* PickEligible() {
    return PickEligibleNamed().second;
  }

  // The eligible lane with the smallest pass; ties break on tenant name
  // (std::map iteration order) so scheduling is deterministic.
  std::pair<std::string, Lane*> PickEligibleNamed() {
    Lane* best = nullptr;
    std::string best_name;
    for (auto& [name, lane] : lanes_) {
      if (!Eligible(lane)) {
        continue;
      }
      if (best == nullptr || lane.pass < best->pass) {
        best = &lane;
        best_name = name;
      }
    }
    return {best_name, best};
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::map<std::string, Lane> lanes_;  // guarded by mu_; ordered for ties
  TenantQuota default_quota_;          // guarded by mu_
  size_t total_queued_ = 0;            // guarded by mu_
  double virtual_time_ = 0;            // guarded by mu_
  bool closed_ = false;                // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SERVICE_FAIR_QUEUE_H_
