// Concurrent multi-tenant workflow service.
//
// The paper's Musketeer is a long-running manager that many users submit
// workflows to; this service supplies that front door. Submissions enter a
// bounded queue (backpressure: a full queue REJECTs non-blocking submits)
// and a pool of worker threads drains it, each worker driving the full
// parse→optimize→partition→codegen→execute pipeline against one shared Dfs
// and one shared HistoryStore. Repeated submissions of an identical
// workflow hit the plan cache and skip straight to execution.
//
// Lifecycle of a submission:
//   Submit()         → QUEUED   (or REJECTED when the queue is full)
//   worker picks up  → RUNNING
//   pipeline result  → DONE / FAILED
//   Ticket::Cancel() → CANCELLED (queued work settles at pickup; running
//                      work unwinds at the next cooperative checkpoint)
//
// Deadlines (RunOptions::deadline) are enforced for queued AND running work:
// Enqueue pins the absolute deadline at submission time, so time spent
// waiting in the queue burns the same budget as execution.
//
// Every submission returns a WorkflowHandle — a future-like ticket with the
// terminal-state wait, the StatusOr<RunResult>, and queue/total latency
// measurements (the service's SLO surface).
//
// Thread-safety contract (see DESIGN.md "Workflow service"): Dfs and
// HistoryStore are internally synchronized; WorkflowPlan and Table are
// immutable once published; the service's own state (tickets, stats) is
// guarded by per-object mutexes. Per-run RunResult.dfs_bytes_* deltas are
// attributed with thread-scoped counters (ScopedDfsRunCounters), so each
// run's numbers are exact even while other workflows execute concurrently
// against the same DFS.

#ifndef MUSKETEER_SRC_SERVICE_SERVICE_H_
#define MUSKETEER_SRC_SERVICE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/musketeer.h"
#include "src/service/fair_queue.h"
#include "src/service/plan_cache.h"
#include "src/service/queue.h"

namespace musketeer {

enum class WorkflowState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kRejected,
  kCancelled,
};

const char* WorkflowStateName(WorkflowState state);

// Why a submission was REJECTED. The network edge maps these onto distinct
// HTTP status codes: over-quota is the tenant's own fault (429), queue-full
// and shutdown are service-side saturation (503).
enum class RejectReason {
  kNone,            // not rejected
  kQueueFull,       // shared submission queue at capacity
  kTenantOverQuota, // this tenant's max_queued allowance exhausted
  kShutdown,        // service no longer accepting work
};

const char* RejectReasonName(RejectReason reason);

// Future-like per-submission ticket. Created by WorkflowService::Submit;
// shared between the submitter and the worker that runs the workflow.
class WorkflowTicket {
 public:
  uint64_t id() const { return id_; }
  const WorkflowSpec& spec() const { return spec_; }
  // Tenant this submission was admitted under; "" is the default tenant.
  const std::string& tenant() const { return tenant_; }

  // Why the submission was REJECTED; kNone in every other state.
  RejectReason reject_reason() const;

  WorkflowState state() const;
  bool terminal() const;  // DONE, FAILED, REJECTED or CANCELLED

  // Requests cooperative cancellation. Queued work settles as CANCELLED at
  // worker pickup; running work unwinds at its next checkpoint (between
  // stages, jobs, or kernel batches) and settles as CANCELLED. Safe to call
  // from any thread, repeatedly, and in any state (no-op once terminal).
  void Cancel();

  // Blocks until the ticket reaches a terminal state.
  void Wait() const;
  // Bounded wait; false on timeout.
  bool WaitFor(std::chrono::milliseconds timeout) const;

  // The pipeline outcome. CONTRACT: only valid in a terminal state — call
  // Wait()/WaitFor() first; calling on a QUEUED or RUNNING ticket is a
  // programming error (asserts in debug builds). FAILED carries the pipeline
  // error, REJECTED a ResourceExhausted status, CANCELLED a Cancelled status.
  const StatusOr<RunResult>& result() const;

  // Seconds spent QUEUED (submit → worker pickup) and submit → terminal.
  // Wall-clock, not simulated time.
  double queue_seconds() const;
  double total_seconds() const;

  // True when execution reused a cached plan.
  bool plan_cache_hit() const;

 private:
  friend class WorkflowService;
  using Clock = std::chrono::steady_clock;

  WorkflowTicket(uint64_t id, WorkflowSpec spec, std::string tenant)
      : id_(id),
        spec_(std::move(spec)),
        tenant_(std::move(tenant)),
        submitted_at_(Clock::now()) {}

  void MarkRunning();
  void Finish(WorkflowState state, StatusOr<RunResult> result, bool cache_hit);
  void Finish(WorkflowState state, StatusOr<RunResult> result, bool cache_hit,
              RejectReason reject_reason);

  const uint64_t id_;
  const WorkflowSpec spec_;
  const std::string tenant_;
  const Clock::time_point submitted_at_;
  // Fires the run's cooperative cancellation. Set once by Enqueue (either
  // adopted from caller-supplied RunOptions or freshly made) before the
  // ticket is visible to a worker; the token itself is thread-safe.
  CancelToken cancel_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  WorkflowState state_ = WorkflowState::kQueued;          // guarded by mu_
  RejectReason reject_reason_ = RejectReason::kNone;      // guarded by mu_
  StatusOr<RunResult> result_{InternalError("workflow not finished")};
  Clock::time_point started_at_{};                        // guarded by mu_
  Clock::time_point finished_at_{};                       // guarded by mu_
  bool plan_cache_hit_ = false;                           // guarded by mu_
};

using WorkflowHandle = std::shared_ptr<WorkflowTicket>;

struct ServiceConfig {
  int num_workers = 4;
  size_t queue_capacity = 64;
  // Plan cache for repeated submissions; capacity 0 disables it.
  size_t plan_cache_capacity = 128;
  // Applied to every submission that does not carry its own RunOptions.
  // `default_options.history` is how the shared HistoryStore is plumbed in.
  RunOptions default_options;
  // Intra-query parallelism per worker: each worker thread runs its
  // workflows' data-plane kernels at this width. 0 inherits the process
  // default (MUSKETEER_THREADS env, else hardware concurrency).
  int threads = 0;
  // Models the synchronous round-trip of dispatching one engine job to a
  // remote cluster (the paper's deployment blocks on Hadoop/Spark job
  // submission). Charged per engine job as real wall-clock sleep; this wait
  // — not CPU — is what the worker pool overlaps. 0 disables it.
  std::chrono::milliseconds dispatch_latency{0};
  // When set, the constructor does not spawn workers; call Start(). Lets
  // tests fill the queue deterministically before anything drains it.
  bool manual_start = false;
  // Admission/scheduling policy for tenants not named in `tenant_quotas`.
  // The default (weight 1, no caps) makes a single anonymous tenant behave
  // exactly like the pre-tenant FIFO service.
  TenantQuota default_quota;
  // Per-tenant weighted-fair-share and admission bounds (see fair_queue.h).
  std::vector<std::pair<std::string, TenantQuota>> tenant_quotas;
};

// Per-tenant slice of the service counters, keyed by tenant id in
// ServiceStats::tenants ("" = the default tenant).
struct TenantStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
};

struct ServiceStats {
  uint64_t submitted = 0;  // accepted into the queue
  uint64_t rejected = 0;   // bounced off the full queue or over quota
  uint64_t completed = 0;  // DONE
  uint64_t failed = 0;     // FAILED (including deadline expiry)
  uint64_t cancelled = 0;  // CANCELLED
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  // Streaming & incremental aggregates over completed runs (src/stream/):
  // fingerprint-reused jobs, edges that ran pipelined, and the batch/byte
  // volume that moved over channels instead of the DFS barrier.
  uint64_t jobs_reused = 0;
  uint64_t pipelined_edges = 0;
  uint64_t stream_batches = 0;
  Bytes stream_bytes = 0;
  // Mid-run suffix re-partitions across completed runs (DESIGN.md "Planner
  // at scale").
  uint64_t replans = 0;
  size_t queue_depth = 0;  // instantaneous
  // Ordered so exposition (/metrics, /stats) is deterministic.
  std::map<std::string, TenantStats> tenants;
};

class WorkflowService {
 public:
  // `dfs` is the shared storage layer every workflow reads and writes; not
  // owned. Workers start immediately unless config.manual_start.
  explicit WorkflowService(Dfs* dfs, ServiceConfig config = {});

  // Drains in-flight work (Shutdown) before destruction.
  ~WorkflowService();

  WorkflowService(const WorkflowService&) = delete;
  WorkflowService& operator=(const WorkflowService&) = delete;

  // Spawns the worker pool. Idempotent; only needed with manual_start.
  void Start();

  // Non-blocking submission with the service-wide default options; returns
  // a REJECTED ticket when the queue is full, the tenant is over quota, or
  // the service is shut down (ticket->reject_reason() says which).
  WorkflowHandle Submit(WorkflowSpec spec);
  WorkflowHandle Submit(WorkflowSpec spec, RunOptions options);

  // Tenant-attributed submission: admitted against `tenant`'s quota and
  // scheduled in its weighted-fair lane. The plain Submit overloads are
  // equivalent to SubmitAs("", ...), the default tenant.
  WorkflowHandle SubmitAs(const std::string& tenant, WorkflowSpec spec);
  WorkflowHandle SubmitAs(const std::string& tenant, WorkflowSpec spec,
                          RunOptions options);

  // Blocking submission: waits for queue space (global and per-tenant)
  // instead of rejecting (REJECTED only if the service shuts down while
  // waiting).
  WorkflowHandle SubmitBlocking(WorkflowSpec spec);
  WorkflowHandle SubmitBlocking(WorkflowSpec spec, RunOptions options);
  WorkflowHandle SubmitBlockingAs(const std::string& tenant, WorkflowSpec spec,
                                  RunOptions options);

  // Incremental resubmission (DESIGN.md "Streaming & incremental
  // execution"): re-runs `spec` with RunOptions::incremental set, so any job
  // whose input fingerprint — recorded by this service's earlier run of the
  // workflow — still matches the DFS is skipped and its outputs served from
  // storage. After a base-relation append, only the affected DAG suffix
  // recomputes; the result is bit-identical to a cold run.
  WorkflowHandle ResubmitIncremental(WorkflowSpec spec);
  WorkflowHandle ResubmitIncrementalAs(const std::string& tenant,
                                       WorkflowSpec spec, RunOptions options);

  // Raw-task submission (PR 8): enqueues `task` to run on a worker thread,
  // in the default tenant's fair-queue lane, blocking for queue space. The
  // ShardCoordinator uses this to route individual job dispatches to a
  // shard's worker pool without minting a whole workflow ticket. Returns
  // false (task not run) once the service is shut down. Tasks count toward
  // Drain() like any accepted submission. The task must not call back into
  // this service's blocking APIs (a worker waiting on its own pool
  // deadlocks a single-worker service).
  bool SubmitTask(std::function<void()> task);

  // Blocks until every accepted submission has reached a terminal state.
  // New submissions may still arrive while draining.
  void Drain();

  // Stops accepting submissions, finishes queued + running work, joins the
  // workers. Idempotent.
  void Shutdown();

  // Counter visibility: a submission's terminal state is published to its
  // ticket *before* the service counters update, so after Ticket::Wait()
  // the ticket is settled but stats() may trail by that submission; after
  // Drain() the counters cover everything accepted so far.
  ServiceStats stats() const;

  int num_workers() const { return config_.num_workers; }
  size_t queue_capacity() const { return queue_.capacity(); }
  // The storage layer this service executes against (a per-shard view when
  // instantiated by the ShardCoordinator).
  Dfs* dfs() const { return dfs_; }
  // The options applied to submissions that carry none — the network edge
  // copies these to layer per-request settings (deadlines) on top.
  const RunOptions& default_options() const { return config_.default_options; }
  // The service-owned fingerprint store every run records into (unless the
  // submission brought its own via RunOptions::fingerprints). Internally
  // synchronized; exposed so tests and embedding tools can inspect/clear it.
  FingerprintStore* fingerprint_store() { return &fingerprints_; }

 private:
  struct QueueItem {
    WorkflowHandle ticket;  // null for raw tasks
    RunOptions options;
    std::function<void()> task;  // non-null: run this instead of a workflow
  };

  WorkflowHandle MakeTicket(WorkflowSpec spec, const std::string& tenant);
  WorkflowHandle Enqueue(const std::string& tenant, WorkflowSpec spec,
                         RunOptions options, bool blocking);
  void WorkerLoop();
  void RunOne(const QueueItem& item);
  void OnTicketTerminal(const std::string& tenant, WorkflowState state);

  Dfs* const dfs_;
  const ServiceConfig config_;
  FairQueue<QueueItem> queue_;
  PlanCache plan_cache_;
  // Per-job input fingerprints across every run this service executed;
  // consulted (and required) by ResubmitIncremental. FingerprintStore is
  // internally synchronized, so concurrent workers share it directly.
  FingerprintStore fingerprints_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> workers_;  // guarded by mu_ (spawn/join)
  bool started_ = false;              // guarded by mu_
  bool shutdown_ = false;             // guarded by mu_
  uint64_t next_id_ = 1;              // guarded by mu_
  uint64_t outstanding_ = 0;          // accepted, not yet terminal
  ServiceStats stats_;                // guarded by mu_ (counter fields)
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SERVICE_SERVICE_H_
