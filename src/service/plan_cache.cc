#include "src/service/plan_cache.h"

#include <algorithm>
#include <sstream>

namespace musketeer {

uint64_t HashSource(const std::string& source) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string PlanCacheKey(const WorkflowSpec& spec, const RunOptions& options) {
  // The effective engine set is what the partitioner sees: the planner
  // override when present, the run-level restriction otherwise.
  std::vector<EngineKind> engines = options.planner.engines.empty()
                                        ? options.engines
                                        : options.planner.engines;
  std::sort(engines.begin(), engines.end());
  engines.erase(std::unique(engines.begin(), engines.end()), engines.end());

  // '\x1f' (unit separator) cannot appear in engine/cluster names and makes
  // the workflow-id prefix unambiguous for Invalidate().
  std::ostringstream key;
  key << spec.id << '\x1f' << static_cast<int>(spec.language) << '\x1f'
      << HashSource(spec.source) << '\x1f';
  for (EngineKind kind : engines) {
    key << EngineKindName(kind) << ',';
  }
  // Remaining knobs that change the plan (not just its execution): cluster,
  // codegen flavor, merging/partitioner settings.
  key << '\x1f' << options.cluster.name << ':' << options.cluster.num_nodes
      << '\x1f' << static_cast<int>(options.codegen.flavor) << ':'
      << options.codegen.shared_scans << ':' << options.optimize_ir << ':'
      << options.planner.enable_merging << ':'
      << (options.planner.custom_strategy.empty()
              ? PartitionStrategyKindName(options.planner.strategy)
              : options.planner.custom_strategy)
      << ':' << options.planner.exhaustive_threshold << ':'
      << options.planner.dp_linear_orders << ':'
      << options.planner.dp_order_seed << ':'
      << options.planner.dp_segment_cap << ':'
      << options.conservative_first_run;
  return key.str();
}

std::shared_ptr<const WorkflowPlan> PlanCache::Get(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const WorkflowPlan> plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(plan), lru_.begin()};
}

void PlanCache::Invalidate(const std::string& workflow_id) {
  const std::string prefix = workflow_id + '\x1f';
  std::lock_guard lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

}  // namespace musketeer
