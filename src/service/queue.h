// Bounded multi-producer/multi-consumer queue for the workflow service.
//
// Submissions land here and worker threads drain it. The bound is the
// service's backpressure mechanism: TryPush fails (→ workflow REJECTED) when
// the queue is full, while Push blocks the producer until a slot frees up.
// Close() wakes every waiter and makes the queue drain-only, which is how
// the service shuts its worker pool down without losing accepted work.

#ifndef MUSKETEER_SRC_SERVICE_QUEUE_H_
#define MUSKETEER_SRC_SERVICE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace musketeer {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking: false when the queue is full or closed.
  bool TryPush(T item) {
    std::unique_lock lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while full; false when the queue was closed before the item
  // could be accepted.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty; nullopt once the queue is closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Makes the queue reject new items and wakes all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;  // guarded by mu_
  bool closed_ = false;  // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SERVICE_QUEUE_H_
