// Plan cache for repeated workflow submissions.
//
// Tupleware-style observation: analytics services see the *same* workflows
// over and over, so re-running parse→optimize→partition→codegen per
// submission is pure overhead. The cache maps a plan key — workflow id,
// FNV-1a hash of the source text, the permitted engine set, and the cluster
// it was planned for — to the immutable WorkflowPlan, letting repeat
// submissions jump straight to execution.
//
// Sharing a cached plan across runs is sound because WorkflowPlan is
// immutable and execution only reads it. A cached plan reflects the history
// / DFS statistics at planning time; callers that want cost re-estimation
// after history refinement call Invalidate() or disable the cache.
//
// Thread-safe: one instance is shared by every worker in the service pool.

#ifndef MUSKETEER_SRC_SERVICE_PLAN_CACHE_H_
#define MUSKETEER_SRC_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/musketeer.h"

namespace musketeer {

// 64-bit FNV-1a; stable across runs (keys may be logged / compared).
uint64_t HashSource(const std::string& source);

// Canonical cache key for (workflow id, source hash, engine set, cluster).
std::string PlanCacheKey(const WorkflowSpec& spec, const RunOptions& options);

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 128) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached plan for the key, or nullptr. Bumps LRU recency.
  std::shared_ptr<const WorkflowPlan> Get(const std::string& key);

  // Inserts (or replaces) the plan under `key`, evicting the least recently
  // used entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const WorkflowPlan> plan);

  // Drops every entry whose workflow id matches (prefix match on the key).
  void Invalidate(const std::string& workflow_id);

  void Clear();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using LruList = std::list<std::string>;  // front = most recent
  struct Entry {
    std::shared_ptr<const WorkflowPlan> plan;
    LruList::iterator lru_pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // guarded by mu_
  LruList lru_;                                     // guarded by mu_
  uint64_t hits_ = 0;                               // guarded by mu_
  uint64_t misses_ = 0;                             // guarded by mu_
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_SERVICE_PLAN_CACHE_H_
