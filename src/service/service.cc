#include "src/service/service.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "src/base/logging.h"
#include "src/base/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace musketeer {

namespace {

// Service metric handles (function-local statics: map lookup paid once).
Counter& SubmittedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.submitted");
  return c;
}
Counter& RejectedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.rejected");
  return c;
}
Counter& CompletedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.completed");
  return c;
}
Counter& FailedCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.failed");
  return c;
}
Counter& PlanCacheHitCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.plan_cache.hit");
  return c;
}
Counter& PlanCacheMissCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.plan_cache.miss");
  return c;
}
Counter& CancelledCounter() {
  static Counter& c =
      MetricsRegistry::Global().counter("musketeer.service.cancelled");
  return c;
}

// Per-tenant counters carry the tenant id in the metric name, so they cannot
// be cached in function-local statics; the registry lookup is one mutex +
// hash per submission event, far off any kernel hot path.
Counter& TenantCounter(const std::string& tenant, const char* what) {
  return MetricsRegistry::Global().counter(
      "musketeer.service.tenant." + (tenant.empty() ? "default" : tenant) +
      "." + what);
}

}  // namespace

const char* WorkflowStateName(WorkflowState state) {
  switch (state) {
    case WorkflowState::kQueued:
      return "QUEUED";
    case WorkflowState::kRunning:
      return "RUNNING";
    case WorkflowState::kDone:
      return "DONE";
    case WorkflowState::kFailed:
      return "FAILED";
    case WorkflowState::kRejected:
      return "REJECTED";
    case WorkflowState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "NONE";
    case RejectReason::kQueueFull:
      return "QUEUE_FULL";
    case RejectReason::kTenantOverQuota:
      return "TENANT_OVER_QUOTA";
    case RejectReason::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

// ---- WorkflowTicket --------------------------------------------------------

WorkflowState WorkflowTicket::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

bool WorkflowTicket::terminal() const {
  std::lock_guard lock(mu_);
  return state_ != WorkflowState::kQueued && state_ != WorkflowState::kRunning;
}

void WorkflowTicket::Wait() const {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] {
    return state_ != WorkflowState::kQueued && state_ != WorkflowState::kRunning;
  });
}

bool WorkflowTicket::WaitFor(std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, timeout, [&] {
    return state_ != WorkflowState::kQueued && state_ != WorkflowState::kRunning;
  });
}

const StatusOr<RunResult>& WorkflowTicket::result() const {
  std::lock_guard lock(mu_);
  // Contract: result() is only valid once the ticket is terminal. (Checked
  // inline — terminal() would re-lock mu_ and deadlock.)
  assert(state_ != WorkflowState::kQueued && state_ != WorkflowState::kRunning &&
         "WorkflowTicket::result() called on a non-terminal ticket; "
         "call Wait() or WaitFor() first");
  return result_;
}

void WorkflowTicket::Cancel() { cancel_.RequestCancel(); }

RejectReason WorkflowTicket::reject_reason() const {
  std::lock_guard lock(mu_);
  return reject_reason_;
}

double WorkflowTicket::queue_seconds() const {
  std::lock_guard lock(mu_);
  const Clock::time_point until =
      started_at_ == Clock::time_point{} ? finished_at_ : started_at_;
  if (until == Clock::time_point{}) {
    return 0;
  }
  return std::chrono::duration<double>(until - submitted_at_).count();
}

double WorkflowTicket::total_seconds() const {
  std::lock_guard lock(mu_);
  if (finished_at_ == Clock::time_point{}) {
    return 0;
  }
  return std::chrono::duration<double>(finished_at_ - submitted_at_).count();
}

bool WorkflowTicket::plan_cache_hit() const {
  std::lock_guard lock(mu_);
  return plan_cache_hit_;
}

void WorkflowTicket::MarkRunning() {
  std::lock_guard lock(mu_);
  state_ = WorkflowState::kRunning;
  started_at_ = Clock::now();
}

void WorkflowTicket::Finish(WorkflowState state, StatusOr<RunResult> result,
                            bool cache_hit) {
  Finish(state, std::move(result), cache_hit, RejectReason::kNone);
}

void WorkflowTicket::Finish(WorkflowState state, StatusOr<RunResult> result,
                            bool cache_hit, RejectReason reject_reason) {
  {
    std::lock_guard lock(mu_);
    state_ = state;
    result_ = std::move(result);
    finished_at_ = Clock::now();
    plan_cache_hit_ = cache_hit;
    reject_reason_ = reject_reason;
  }
  cv_.notify_all();
}

// ---- WorkflowService -------------------------------------------------------

WorkflowService::WorkflowService(Dfs* dfs, ServiceConfig config)
    : dfs_(dfs),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      plan_cache_(config_.plan_cache_capacity) {
  queue_.SetDefaultQuota(config_.default_quota);
  for (const auto& [tenant, quota] : config_.tenant_quotas) {
    queue_.SetQuota(tenant, quota);
  }
  if (!config_.manual_start) {
    Start();
  }
}

WorkflowService::~WorkflowService() { Shutdown(); }

void WorkflowService::Start() {
  std::lock_guard lock(mu_);
  if (started_ || shutdown_) {
    return;
  }
  started_ = true;
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkflowHandle WorkflowService::MakeTicket(WorkflowSpec spec,
                                           const std::string& tenant) {
  uint64_t id;
  {
    std::lock_guard lock(mu_);
    id = next_id_++;
  }
  // private ctor: not reachable through make_shared
  return WorkflowHandle(new WorkflowTicket(id, std::move(spec), tenant));
}

WorkflowHandle WorkflowService::Submit(WorkflowSpec spec) {
  return Enqueue("", std::move(spec), config_.default_options,
                 /*blocking=*/false);
}

WorkflowHandle WorkflowService::Submit(WorkflowSpec spec, RunOptions options) {
  return Enqueue("", std::move(spec), std::move(options), /*blocking=*/false);
}

WorkflowHandle WorkflowService::SubmitAs(const std::string& tenant,
                                         WorkflowSpec spec) {
  return Enqueue(tenant, std::move(spec), config_.default_options,
                 /*blocking=*/false);
}

WorkflowHandle WorkflowService::SubmitAs(const std::string& tenant,
                                         WorkflowSpec spec,
                                         RunOptions options) {
  return Enqueue(tenant, std::move(spec), std::move(options),
                 /*blocking=*/false);
}

WorkflowHandle WorkflowService::SubmitBlocking(WorkflowSpec spec) {
  return Enqueue("", std::move(spec), config_.default_options,
                 /*blocking=*/true);
}

WorkflowHandle WorkflowService::SubmitBlocking(WorkflowSpec spec,
                                               RunOptions options) {
  return Enqueue("", std::move(spec), std::move(options), /*blocking=*/true);
}

WorkflowHandle WorkflowService::SubmitBlockingAs(const std::string& tenant,
                                                 WorkflowSpec spec,
                                                 RunOptions options) {
  return Enqueue(tenant, std::move(spec), std::move(options),
                 /*blocking=*/true);
}

WorkflowHandle WorkflowService::ResubmitIncremental(WorkflowSpec spec) {
  return ResubmitIncrementalAs("", std::move(spec), config_.default_options);
}

WorkflowHandle WorkflowService::ResubmitIncrementalAs(const std::string& tenant,
                                                      WorkflowSpec spec,
                                                      RunOptions options) {
  options.incremental = true;
  return Enqueue(tenant, std::move(spec), std::move(options),
                 /*blocking=*/false);
}

WorkflowHandle WorkflowService::Enqueue(const std::string& tenant,
                                        WorkflowSpec spec, RunOptions options,
                                        bool blocking) {
  WorkflowHandle ticket = MakeTicket(std::move(spec), tenant);
  // Wire cancellation: adopt a caller-supplied token (so the submitter's own
  // handle also works) or mint one; either way Ticket::Cancel() fires it.
  // Done before the queue push — the ticket must be fully wired before any
  // worker can see it.
  if (options.cancel.valid()) {
    ticket->cancel_ = options.cancel;
  } else {
    ticket->cancel_ = CancelToken::Make();
    options.cancel = ticket->cancel_;
  }
  // Pin a relative deadline at submission time so queue wait burns the same
  // budget as execution (enforced at pickup and at every checkpoint after).
  if (!options.absolute_deadline.has_value() && options.deadline.count() > 0) {
    options.absolute_deadline =
        std::chrono::steady_clock::now() + options.deadline;
  }
  {
    // Count the submission as outstanding *before* it is visible to a
    // worker, so Drain() can never observe accepted-but-uncounted work.
    std::lock_guard lock(mu_);
    ++outstanding_;
  }
  QueueItem item{ticket, std::move(options)};
  const AdmitResult admitted = blocking
                                   ? queue_.Push(tenant, std::move(item))
                                   : queue_.TryPush(tenant, std::move(item));
  if (admitted != AdmitResult::kOk) {
    RejectReason reason = RejectReason::kShutdown;
    std::string message = "workflow service is shut down";
    if (admitted == AdmitResult::kQueueFull) {
      reason = RejectReason::kQueueFull;
      message = "workflow service queue is full (capacity " +
                std::to_string(queue_.capacity()) + ")";
    } else if (admitted == AdmitResult::kTenantOverQuota) {
      reason = RejectReason::kTenantOverQuota;
      message = "tenant '" + (tenant.empty() ? "default" : tenant) +
                "' is over its queued-submission quota";
    }
    ticket->Finish(WorkflowState::kRejected, ResourceExhaustedError(message),
                   /*cache_hit=*/false, reason);
    OnTicketTerminal(tenant, WorkflowState::kRejected);
    return ticket;
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.submitted;
    ++stats_.tenants[tenant].submitted;
  }
  SubmittedCounter().Increment();
  TenantCounter(tenant, "submitted").Increment();
  return ticket;
}

bool WorkflowService::SubmitTask(std::function<void()> task) {
  {
    // Outstanding before visible to a worker, same as Enqueue: Drain() must
    // never observe accepted-but-uncounted work.
    std::lock_guard lock(mu_);
    ++outstanding_;
  }
  QueueItem item;
  item.task = std::move(task);
  if (queue_.Push("", std::move(item)) != AdmitResult::kOk) {
    {
      std::lock_guard lock(mu_);
      --outstanding_;
    }
    idle_cv_.notify_all();
    return false;
  }
  return true;
}

void WorkflowService::WorkerLoop() {
  // Pin this worker's intra-query parallelism for every workflow it runs;
  // the override is thread-local, so concurrent workers do not interfere.
  std::optional<ScopedParallelThreads> width;
  if (config_.threads > 0) {
    width.emplace(config_.threads);
  }
  while (true) {
    std::optional<FairQueue<QueueItem>::Popped> popped = queue_.Pop();
    if (!popped.has_value()) {
      return;  // closed and drained
    }
    RunOne(popped->item);
    // Strict Pop/OnFinished pairing: releases this tenant's in-flight slot
    // after the run settled, re-arming its lane for the fair scheduler.
    queue_.OnFinished(popped->tenant);
  }
}

void WorkflowService::RunOne(const QueueItem& item) {
  // Raw tasks (SubmitTask) bypass the ticket lifecycle entirely: run, then
  // settle the outstanding count so Drain() sees them.
  if (item.task) {
    item.task();
    {
      std::lock_guard lock(mu_);
      --outstanding_;
    }
    idle_cv_.notify_all();
    return;
  }
  // Enforce cancellation/deadline for work that never left the queue.
  if (item.options.cancel.cancel_requested()) {
    item.ticket->Finish(WorkflowState::kCancelled,
                        CancelledError("workflow '" + item.ticket->spec().id +
                                       "' cancelled while queued"),
                        /*cache_hit=*/false);
    OnTicketTerminal(item.ticket->tenant(), WorkflowState::kCancelled);
    return;
  }
  if (item.options.absolute_deadline.has_value() &&
      std::chrono::steady_clock::now() >= *item.options.absolute_deadline) {
    item.ticket->Finish(
        WorkflowState::kFailed,
        DeadlineExceededError("workflow '" + item.ticket->spec().id +
                              "' exceeded its deadline while queued"),
        /*cache_hit=*/false);
    OnTicketTerminal(item.ticket->tenant(), WorkflowState::kFailed);
    return;
  }
  item.ticket->MarkRunning();
  MLOG_DEBUG << "service: workflow '" << item.ticket->spec().id << "' (#"
             << item.ticket->id() << ") running";

  Span span("service.workflow", "service");
  static Histogram& queue_seconds = MetricsRegistry::Global().histogram(
      "musketeer.service.queue_seconds");
  static Histogram& run_seconds =
      MetricsRegistry::Global().histogram("musketeer.service.run_seconds");
  queue_seconds.Observe(item.ticket->queue_seconds());

  Musketeer m(dfs_);
  const WorkflowSpec& spec = item.ticket->spec();
  // Every run records into (and incremental resubmits reuse from) the
  // service-owned fingerprint store unless the submission brought its own.
  // Does not perturb the plan-cache key — PlanCacheKey hashes only
  // plan-affecting fields, so resubmissions still hit the cached plan.
  RunOptions options = item.options;
  if (options.fingerprints == nullptr) {
    options.fingerprints = &fingerprints_;
  }
  const std::string cache_key = PlanCacheKey(spec, options);

  bool cache_hit = false;
  std::shared_ptr<const WorkflowPlan> plan;
  if (config_.plan_cache_capacity > 0) {
    plan = plan_cache_.Get(cache_key);
    cache_hit = plan != nullptr;
    // Mirrors WorkflowTicket::plan_cache_hit exactly: incremented once per
    // submission that consults the cache (tests assert the agreement).
    if (cache_hit) {
      PlanCacheHitCounter().Increment();
    } else {
      PlanCacheMissCounter().Increment();
    }
  }
  StatusOr<RunResult> result = InternalError("unreachable");
  if (plan == nullptr) {
    StatusOr<WorkflowPlan> built = m.Plan(spec, options);
    if (!built.ok()) {
      result = built.status();
    } else {
      plan = std::make_shared<const WorkflowPlan>(std::move(built).value());
      if (config_.plan_cache_capacity > 0) {
        plan_cache_.Put(cache_key, plan);
      }
    }
  }
  if (plan != nullptr) {
    if (config_.dispatch_latency.count() > 0) {
      // Sliced sleep so a cancellation or deadline interrupts the simulated
      // cluster round-trip instead of blocking behind it.
      auto wake = std::chrono::steady_clock::now() +
                  config_.dispatch_latency * static_cast<int>(plan->plans.size());
      while (std::chrono::steady_clock::now() < wake &&
             !options.cancel.cancel_requested() &&
             !(options.absolute_deadline.has_value() &&
               std::chrono::steady_clock::now() >=
                   *options.absolute_deadline)) {
        auto remaining = wake - std::chrono::steady_clock::now();
        std::this_thread::sleep_for(
            std::min<std::chrono::steady_clock::duration>(
                remaining, std::chrono::milliseconds(10)));
      }
    }
    result = m.Execute(spec, *plan, options);
  }

  WorkflowState state =
      result.ok() ? WorkflowState::kDone : WorkflowState::kFailed;
  if (!result.ok() && result.status().code() == StatusCode::kCancelled) {
    state = WorkflowState::kCancelled;
  }
  if (result.ok()) {
    std::lock_guard lock(mu_);
    stats_.jobs_reused += static_cast<uint64_t>(result->jobs_reused);
    stats_.pipelined_edges += static_cast<uint64_t>(result->pipelined_edges);
    stats_.stream_batches += result->stream_batches;
    stats_.stream_bytes += result->stream_bytes;
    stats_.replans += static_cast<uint64_t>(result->replans);
  }
  if (span.active()) {
    span.SetAttr("workflow", spec.id);
    span.SetAttr("ticket", std::to_string(item.ticket->id()));
    span.SetAttr("cache_hit", cache_hit ? "true" : "false");
    span.SetAttr("state", WorkflowStateName(state));
  }
  run_seconds.Observe(span.elapsed_seconds());
  item.ticket->Finish(state, std::move(result), cache_hit);
  OnTicketTerminal(item.ticket->tenant(), state);
}

void WorkflowService::OnTicketTerminal(const std::string& tenant,
                                       WorkflowState state) {
  {
    std::lock_guard lock(mu_);
    TenantStats& tstats = stats_.tenants[tenant];
    switch (state) {
      case WorkflowState::kDone:
        ++stats_.completed;
        ++tstats.completed;
        CompletedCounter().Increment();
        TenantCounter(tenant, "completed").Increment();
        break;
      case WorkflowState::kFailed:
        ++stats_.failed;
        ++tstats.failed;
        FailedCounter().Increment();
        break;
      case WorkflowState::kRejected:
        ++stats_.rejected;
        ++tstats.rejected;
        RejectedCounter().Increment();
        TenantCounter(tenant, "rejected").Increment();
        break;
      case WorkflowState::kCancelled:
        ++stats_.cancelled;
        ++tstats.cancelled;
        CancelledCounter().Increment();
        break;
      default:
        break;
    }
    --outstanding_;
  }
  idle_cv_.notify_all();
}

void WorkflowService::Drain() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void WorkflowService::Shutdown() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    workers.swap(workers_);
  }
  queue_.Close();  // wakes idle workers; queued items still drain
  for (std::thread& t : workers) {
    t.join();
  }
}

ServiceStats WorkflowService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(mu_);
    out = stats_;
  }
  out.plan_cache_hits = plan_cache_.hits();
  out.plan_cache_misses = plan_cache_.misses();
  out.queue_depth = queue_.size();
  return out;
}

}  // namespace musketeer
