#include "src/core/job_dispatch.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "src/base/logging.h"
#include "src/obs/metrics.h"

namespace musketeer {

Status BackoffSleep(std::chrono::milliseconds backoff,
                    const ExecutionContext& ctx) {
  auto wake = std::chrono::steady_clock::now() + backoff;
  while (std::chrono::steady_clock::now() < wake) {
    MUSKETEER_RETURN_IF_ERROR(ctx.Check());
    auto remaining = wake - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(10)));
  }
  return ctx.Check();
}

StatusOr<EngineKind> NextFailoverEngine(const WorkflowSpec& workflow,
                                        const WorkflowPlan& wplan,
                                        const std::vector<int>& ops,
                                        const RunOptions& options,
                                        const RelationSizes& dfs_sizes,
                                        const std::vector<EngineKind>& tried) {
  RuntimeCalibration calibration;
  if (options.runtime_history != nullptr) {
    calibration = options.runtime_history->Calibration();
  }
  CostModel model(options.cluster, options.history, workflow.id,
                  options.conservative_first_run,
                  calibration.has_observations ? &calibration : nullptr);
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                             model.PredictSizes(*wplan.dag, dfs_sizes));
  std::vector<EngineKind> candidates(options.engines);
  if (candidates.empty()) {
    candidates.assign(kAllEngines.begin(), kAllEngines.end());
  }
  bool found = false;
  EngineKind best = EngineKind::kHadoop;
  double best_cost = std::numeric_limits<double>::infinity();
  for (EngineKind engine : candidates) {
    if (std::find(tried.begin(), tried.end(), engine) != tried.end()) {
      continue;
    }
    if (!BackendFor(engine).CanRunAsSingleJob(*wplan.dag, ops)) {
      continue;
    }
    double cost = model.JobCost(*wplan.dag, ops, engine, sizes);
    if (cost < best_cost) {  // excludes kInfiniteCost
      best = engine;
      best_cost = cost;
      found = true;
    }
  }
  if (!found) {
    return UnavailableError("no untried engine can run the job");
  }
  return best;
}

StatusOr<JobDispatchOutcome> DispatchJobWithRecovery(
    JobPlan* job, ExecutionContext* ctx, const JobDispatchEnv& env) {
  static Counter& retries_counter =
      MetricsRegistry::Global().counter("musketeer.execute.retries");
  static Counter& failovers_counter =
      MetricsRegistry::Global().counter("musketeer.execute.failovers");
  const WorkflowSpec& workflow = *env.workflow;
  const WorkflowPlan& plan = *env.plan;
  const RunOptions& options = *env.options;
  const int max_attempts = std::max(1, ctx->retry.max_attempts);

  JobDispatchOutcome out;
  out.recovery.job = job->name;
  out.recovery.planned_engine = job->engine;
  std::vector<EngineKind> tried;
  Status last_error = OkStatus();
  int global_attempt = 0;
  for (bool succeeded = false; !succeeded;) {
    tried.push_back(job->engine);
    const std::string engine_name = EngineKindName(job->engine);
    for (int local = 1; local <= max_attempts; ++local) {
      ++global_attempt;
      ctx->attempt = global_attempt;
      if (local > 1) {
        MUSKETEER_RETURN_IF_ERROR(BackoffSleep(
            ctx->retry.BackoffFor(local, job->name + "@" + engine_name), *ctx));
      }
      MUSKETEER_RETURN_IF_ERROR(ctx->Check());
      // Mirror the injector's (deterministic) decision for accounting;
      // ExecuteJob makes the identical call and fails accordingly.
      if (ctx->faults.ShouldFail(workflow.id, job->name + "@" + engine_name,
                                 global_attempt)) {
        ++out.recovery.faults_injected;
      }
      StatusOr<JobResult> attempt = env.run_attempt(*job, *ctx);
      ++out.recovery.attempts;
      out.recovery.attempt_log.push_back(
          {global_attempt, job->engine,
           attempt.ok() ? StatusCode::kOk : attempt.status().code()});
      if (attempt.ok()) {
        out.result = std::move(attempt).value();
        succeeded = true;
        break;
      }
      last_error = Annotate(
          attempt.status(), workflow.id + "/" + job->name + "@" + engine_name +
                                " attempt " + std::to_string(global_attempt));
      if (!IsRetryable(last_error.code())) {
        return last_error;
      }
      MLOG_INFO << "job attempt failed (" << last_error.ToString() << ")";
      if (local < max_attempts) {
        retries_counter.Increment();
        ++out.retries;
      }
    }
    if (succeeded) {
      break;
    }
    // Retries exhausted on this engine: cross-engine failover.
    if (!ctx->retry.enable_failover || plan.dag == nullptr) {
      return Annotate(last_error, "retries exhausted on " +
                                      std::string(EngineKindName(job->engine)));
    }
    const std::vector<int>& job_ops =
        env.ops != nullptr ? *env.ops
                           : plan.partitioning.jobs[env.job_index].ops;
    StatusOr<EngineKind> next = NextFailoverEngine(
        workflow, plan, job_ops, options,
        env.dfs_sizes ? env.dfs_sizes() : RelationSizes{}, tried);
    if (!next.ok()) {
      return Annotate(last_error,
                      "failover exhausted: " + next.status().message());
    }
    MUSKETEER_ASSIGN_OR_RETURN(
        JobPlan replan,
        BackendFor(*next).GeneratePlan(*plan.dag, job_ops, plan.base_schemas,
                                       options.codegen));
    *job = std::move(replan);
    // The final failed attempt on the old engine continues as a failover.
    retries_counter.Increment();
    ++out.retries;
    failovers_counter.Increment();
    ++out.failovers;
    ++out.recovery.failovers;
    MLOG_INFO << "failing over job '" << out.recovery.job << "' to "
              << EngineKindName(job->engine);
  }
  out.recovery.final_engine = job->engine;
  return out;
}

}  // namespace musketeer
