// The Musketeer workflow manager (§4, Figure 5).
//
// End-to-end pipeline: front-end source is parsed to the IR DAG, the IR is
// optimized, the DAG is partitioned into back-end jobs with the cost
// function (automatically choosing engines, or restricted to user-specified
// ones), per-job code is generated, and the jobs execute on the simulated
// cluster against the shared DFS. Independent jobs overlap; the workflow
// makespan is the critical path through the job graph.
//
// The pipeline is split at the plan/execute boundary: Plan() runs
// parse→optimize→partition→codegen and yields an immutable WorkflowPlan;
// Execute() runs a plan's jobs against the DFS. Run() composes the two.
// The split is what lets the concurrent workflow service (src/service/)
// cache plans for repeated submissions and jump straight to execution.
//
// Typical use:
//   Dfs dfs;
//   dfs.Put("edges", edge_table);
//   Musketeer m(&dfs);
//   WorkflowSpec wf{.id = "pagerank", .language = FrontendLanguage::kGas,
//                   .source = kPageRankGas};
//   auto result = m.Run(wf, {.cluster = Ec2Cluster(100)});
//   // result->makespan, result->plans[i].generated_code, result->outputs...

#ifndef MUSKETEER_SRC_CORE_MUSKETEER_H_
#define MUSKETEER_SRC_CORE_MUSKETEER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/dfs.h"
#include "src/engines/engine.h"
#include "src/frontends/frontend.h"
#include "src/ir/eval.h"
#include "src/obs/runtime_history.h"
#include "src/opt/passes.h"
#include "src/scheduler/decision_tree.h"
#include "src/scheduler/partition_strategy.h"
#include "src/stream/fingerprint.h"
#include "src/stream/pipeline.h"

namespace musketeer {

struct WorkflowSpec {
  std::string id;  // stable name; keys the history store
  FrontendLanguage language = FrontendLanguage::kBeer;
  std::string source;
};

struct RunOptions {
  ClusterConfig cluster = LocalCluster();
  // Engines the partitioner may use; empty = all seven (automatic mapping).
  std::vector<EngineKind> engines;
  CodeGenOptions codegen;
  // Partitioning strategy + parameters (src/scheduler/partition_strategy.h),
  // including the online re-planning policy (replan_threshold/max_replans)
  // Execute() applies mid-run.
  PlannerConfig planner;
  bool optimize_ir = true;
  // History store consulted by the cost model and updated with observed
  // relation sizes after the run (when non-null).
  HistoryStore* history = nullptr;
  // First-run conservatism (§5.2): refuse to merge past generative
  // operators whose output size history does not know yet.
  bool conservative_first_run = false;
  // Measured-runtime store (when non-null): Execute() records each job's
  // (simulated, wall-clock) runtime pair into it and reports prediction
  // error in RunResult; Plan() scales JobCost by the calibration it derives.
  // The observability analogue of `history` — sizes there, times here.
  RuntimeHistory* runtime_history = nullptr;

  // ---- Fault-tolerant execution (DESIGN.md "Fault tolerance") ----
  // Per-engine attempt budget and backoff; enable_failover also controls
  // whether retry exhaustion re-plans the job on the next-cheapest engine.
  RetryPolicy retry;
  // Injected-fault probability per (job@engine, attempt). 0 disables
  // injection. Decisions are a pure function of fault_seed, so a seed
  // reproduces the exact per-job fault/attempt sequence across runs.
  double fault_rate = 0.0;
  uint64_t fault_seed = 0;
  // Relative deadline for the whole run (Plan + Execute); zero = none.
  std::chrono::milliseconds deadline{0};
  // Absolute deadline; takes precedence over `deadline` when set. The
  // workflow service uses this form so queue wait burns deadline budget.
  DeadlinePoint absolute_deadline;
  // Cooperative cancellation handle. Default-constructed = not cancellable;
  // pass CancelToken::Make() and keep a copy to be able to cancel.
  CancelToken cancel;

  // ---- Streaming & incremental execution (DESIGN.md section of the same
  // name) ----
  // Pipelined job-to-job handoff: kAuto streams pipeline-safe edges that win
  // on cost (barrier DFS write+read vs channel handoff), kForce streams every
  // safe edge, kOff keeps the seed's full materialization barrier. Results
  // stay Table::Identical across modes. The sharded coordinator ignores this
  // (jobs live in different placement domains) and keeps the barrier plane.
  PipelineMode pipeline = PipelineMode::kOff;
  size_t pipeline_batch_rows = 8192;
  size_t pipeline_channel_capacity = 4;
  // Fingerprint store (when non-null): Execute() records a per-job input
  // fingerprint after every successful job. With `incremental` also set, a
  // job whose fingerprint matches the store and whose recorded outputs still
  // sit in the DFS unmodified is *reused* — skipped, outputs served from the
  // DFS — which turns a resubmission after a base-relation append into a
  // delta run that recomputes only the affected DAG suffix.
  FingerprintStore* fingerprints = nullptr;
  bool incremental = false;
};

// Everything Plan() produces and Execute() consumes. Immutable once built,
// so one plan may be shared (and executed) by concurrent runs.
struct WorkflowPlan {
  Partitioning partitioning;
  std::vector<JobPlan> plans;             // one per partition job
  std::vector<std::string> sink_relations;  // the workflow's output relations
  OptimizeStats optimizer_stats;
  // The optimized workflow DAG and base schemas the job plans were generated
  // from — retained so cross-engine failover can re-ask the cost model and
  // regenerate a failed job's plan for another engine without re-planning
  // the whole workflow.
  std::shared_ptr<const Dag> dag;
  SchemaMap base_schemas;
};

// One execution attempt of a job, as seen by the retry dispatcher.
struct JobAttempt {
  int attempt = 0;  // 1-based, global across engines for this job
  EngineKind engine = EngineKind::kHadoop;
  StatusCode outcome = StatusCode::kOk;
};

// Recovery accounting for one job: how many attempts it took, whether it
// failed over to another engine, and the full attempt log (deterministic for
// a fixed fault seed — asserted by tests/fault_test.cc).
struct JobRecovery {
  std::string job;
  EngineKind planned_engine = EngineKind::kHadoop;
  EngineKind final_engine = EngineKind::kHadoop;
  int attempts = 0;
  int failovers = 0;
  int faults_injected = 0;
  std::vector<JobAttempt> attempt_log;
};

struct RunResult {
  SimSeconds makespan = 0;          // critical path over the job graph
  SimSeconds total_engine_time = 0; // sum of all job makespans
  Partitioning partitioning;
  std::vector<JobPlan> plans;            // one per partition job
  std::vector<JobResult> job_results;
  TableMap outputs;                      // the workflow's sink relations
  // Bytes this run moved through the DFS. Attributed per run via
  // ScopedDfsRunCounters, so the numbers are exact even while other
  // workflows execute concurrently against the same DFS.
  Bytes dfs_bytes_read = 0;
  Bytes dfs_bytes_written = 0;
  // Subset of dfs_bytes_read fetched from another shard's partition
  // (0 for unsharded runs; the locality objective is minimizing this).
  Bytes dfs_bytes_remote_read = 0;
  OptimizeStats optimizer_stats;
  // Cost-model calibration report, filled when options.runtime_history is
  // set: per-run sums of predicted and measured job wall seconds, and the
  // mean relative prediction error across jobs. Error shrinks on repeat
  // runs as the runtime history calibrates the simulated cost scale.
  double predicted_wall_seconds = 0;
  double measured_wall_seconds = 0;
  double cost_model_error = 0;
  // Per-job recovery records (parallel to `plans`) and run-level totals.
  // `plans` holds the plan that finally ran each job: after failover,
  // plans[i].engine differs from recovery[i].planned_engine.
  std::vector<JobRecovery> recovery;
  int total_retries = 0;          // failed attempts that were retried
  int total_failovers = 0;        // engine switches after retry exhaustion
  int total_faults_injected = 0;  // injected (not organic) attempt failures
  // Streaming & incremental accounting (src/stream/).
  int pipelined_edges = 0;   // inter-job edges that ran over a channel
  int jobs_reused = 0;       // jobs skipped on a fingerprint match
  uint64_t stream_batches = 0;  // batches handed off over channels
  Bytes stream_bytes = 0;       // nominal bytes that skipped the DFS barrier
  // Planner accounting (DESIGN.md "Planner at scale"): the registry name of
  // the strategy that produced the partitioning, and how many times Execute
  // re-partitioned the remaining DAG suffix after a misprediction.
  std::string partition_strategy;
  int replans = 0;
};

class Musketeer {
 public:
  // `dfs` holds workflow inputs and receives outputs; not owned.
  explicit Musketeer(Dfs* dfs) : dfs_(dfs) {}

  // Parses and (optionally) optimizes a workflow without executing it.
  StatusOr<std::unique_ptr<Dag>> Lower(const WorkflowSpec& workflow,
                                       bool optimize = true) const;

  // Front half of the pipeline: parse, optimize, partition, generate.
  StatusOr<WorkflowPlan> Plan(const WorkflowSpec& workflow,
                              const RunOptions& options = {}) const;

  // Back half: executes a previously built plan's jobs against the DFS with
  // critical-path scheduling, collects sinks and records history.
  StatusOr<RunResult> Execute(const WorkflowSpec& workflow,
                              const WorkflowPlan& plan,
                              const RunOptions& options = {});

  // Full pipeline: parse, optimize, partition, generate, execute.
  StatusOr<RunResult> Run(const WorkflowSpec& workflow,
                          const RunOptions& options = {});

  // Runs the workflow operator-by-operator (merging disabled) purely to
  // populate `history` with every intermediate relation size — the paper's
  // per-operator profiling run that yields "full history" (§6.7).
  Status ProfileWorkflow(const WorkflowSpec& workflow, const RunOptions& options,
                         HistoryStore* history);

  // Schemas and nominal sizes of every relation currently in the DFS.
  SchemaMap DfsSchemas() const;
  RelationSizes DfsSizes() const;

 private:
  Dfs* dfs_;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CORE_MUSKETEER_H_
