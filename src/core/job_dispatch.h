// Per-job retry / cross-engine-failover dispatch (PR 5, extracted PR 8).
//
// One job's journey from planned to done: up to retry.max_attempts tries on
// its planned engine (with deterministic backoff), then — if failover is
// enabled — a re-plan onto the next-cheapest engine the cost model says can
// run the job's sub-DAG, repeating until an attempt succeeds or no untried
// engine remains. Attempt numbers are global across engines so the fault
// injector's (workflow, job@engine, attempt) key never repeats within a run.
//
// Extracted from Musketeer::Execute so the ShardCoordinator reuses the exact
// same recovery semantics: it supplies a `run_attempt` that routes the
// attempt to a placed shard's service instead of executing inline, and shard
// failover composes naturally — a dead shard surfaces as a retryable failure,
// and the next attempt's run_attempt re-places among the shards still alive.

#ifndef MUSKETEER_SRC_CORE_JOB_DISPATCH_H_
#define MUSKETEER_SRC_CORE_JOB_DISPATCH_H_

#include <cstddef>
#include <functional>

#include "src/core/musketeer.h"

namespace musketeer {

// Runs one attempt of `job` (re-planned across failovers; the dispatcher
// sets ctx.attempt before each call). Retryable error codes (IsRetryable)
// re-enter the loop; anything else is terminal.
using JobAttemptFn =
    std::function<StatusOr<JobResult>(const JobPlan& job,
                                      const ExecutionContext& ctx)>;

struct JobDispatchEnv {
  const WorkflowSpec* workflow = nullptr;
  // Plan the job came from: dag/base_schemas drive failover re-planning,
  // partitioning.jobs[job_index].ops is the job's operator set.
  const WorkflowPlan* plan = nullptr;
  size_t job_index = 0;
  // Operator set of the job being dispatched. When null, falls back to
  // plan->partitioning.jobs[job_index].ops. Callers that may have re-planned
  // mid-run (online re-planning) must point this at the run's own job list:
  // the shared plan's job boundaries no longer match after a suffix replan.
  const std::vector<int>* ops = nullptr;
  const RunOptions* options = nullptr;
  JobAttemptFn run_attempt;
  // Current DFS base-relation sizes — queried lazily, only when a failover
  // actually needs to re-cost the job.
  std::function<RelationSizes()> dfs_sizes;
};

struct JobDispatchOutcome {
  JobResult result;
  JobRecovery recovery;
  int retries = 0;    // failed attempts that were retried (incl. failovers)
  int failovers = 0;  // engine switches after retry exhaustion
};

// Drives `*job` to success or terminal failure under `env`. On engine
// failover `*job` is replaced with the re-generated plan (so the caller's
// plans[i] records what finally ran). `ctx->attempt` advances monotonically.
StatusOr<JobDispatchOutcome> DispatchJobWithRecovery(JobPlan* job,
                                                     ExecutionContext* ctx,
                                                     const JobDispatchEnv& env);

// The failover choice: cheapest engine among the run's candidates, minus
// `tried`, that can run `ops` as a single job. Mirrors Plan()'s cost-model
// construction so failover uses the same cost basis as the original
// partitioning. Exposed for the coordinator's placement re-costing.
StatusOr<EngineKind> NextFailoverEngine(const WorkflowSpec& workflow,
                                        const WorkflowPlan& wplan,
                                        const std::vector<int>& ops,
                                        const RunOptions& options,
                                        const RelationSizes& dfs_sizes,
                                        const std::vector<EngineKind>& tried);

// Sleeps for `backoff`, waking every 10ms to honor cancellation/deadline.
Status BackoffSleep(std::chrono::milliseconds backoff,
                    const ExecutionContext& ctx);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_CORE_JOB_DISPATCH_H_
