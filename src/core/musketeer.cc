#include "src/core/musketeer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace musketeer {

namespace {

// Resolves the run's absolute deadline: an explicit absolute point wins,
// otherwise a non-zero relative budget starts counting now.
DeadlinePoint EffectiveDeadline(const RunOptions& options) {
  if (options.absolute_deadline.has_value()) {
    return options.absolute_deadline;
  }
  if (options.deadline.count() > 0) {
    return std::chrono::steady_clock::now() + options.deadline;
  }
  return std::nullopt;
}

ExecutionContext MakeContext(const WorkflowSpec& workflow,
                             const RunOptions& options) {
  ExecutionContext ctx;
  ctx.workflow_id = workflow.id;
  ctx.cancel = options.cancel;
  ctx.deadline = EffectiveDeadline(options);
  ctx.faults = FaultInjector(options.fault_rate, options.fault_seed);
  ctx.retry = options.retry;
  if (ctx.retry.backoff_seed == 0) {
    // Default the jitter stream to the fault seed so a single seed pins the
    // whole run's randomness.
    ctx.retry.backoff_seed = options.fault_seed;
  }
  return ctx;
}

// Sleeps for `backoff`, waking every 10ms to honor cancellation/deadline.
Status BackoffSleep(std::chrono::milliseconds backoff,
                    const ExecutionContext& ctx) {
  auto wake = std::chrono::steady_clock::now() + backoff;
  while (std::chrono::steady_clock::now() < wake) {
    MUSKETEER_RETURN_IF_ERROR(ctx.Check());
    auto remaining = wake - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(10)));
  }
  return ctx.Check();
}

// Re-asks the cost model for the cheapest engine (among the run's candidate
// set, minus engines already tried) that can run the job's operator set as a
// single job. Mirrors Plan()'s model construction so failover decisions use
// the same cost basis as the original partitioning.
StatusOr<EngineKind> NextFailoverEngine(const WorkflowSpec& workflow,
                                        const WorkflowPlan& wplan,
                                        const std::vector<int>& ops,
                                        const RunOptions& options,
                                        const RelationSizes& dfs_sizes,
                                        const std::vector<EngineKind>& tried) {
  RuntimeCalibration calibration;
  if (options.runtime_history != nullptr) {
    calibration = options.runtime_history->Calibration();
  }
  CostModel model(options.cluster, options.history, workflow.id,
                  options.conservative_first_run,
                  calibration.has_observations ? &calibration : nullptr);
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                             model.PredictSizes(*wplan.dag, dfs_sizes));
  std::vector<EngineKind> candidates(options.engines);
  if (candidates.empty()) {
    candidates.assign(kAllEngines.begin(), kAllEngines.end());
  }
  bool found = false;
  EngineKind best = EngineKind::kHadoop;
  double best_cost = std::numeric_limits<double>::infinity();
  for (EngineKind engine : candidates) {
    if (std::find(tried.begin(), tried.end(), engine) != tried.end()) {
      continue;
    }
    if (!BackendFor(engine).CanRunAsSingleJob(*wplan.dag, ops)) {
      continue;
    }
    double cost = model.JobCost(*wplan.dag, ops, engine, sizes);
    if (cost < best_cost) {  // excludes kInfiniteCost
      best = engine;
      best_cost = cost;
      found = true;
    }
  }
  if (!found) {
    return UnavailableError("no untried engine can run the job");
  }
  return best;
}

}  // namespace

SchemaMap Musketeer::DfsSchemas() const {
  SchemaMap out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->schema();
    }
  }
  return out;
}

RelationSizes Musketeer::DfsSizes() const {
  RelationSizes out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->nominal_bytes();
    }
  }
  return out;
}

StatusOr<std::unique_ptr<Dag>> Musketeer::Lower(const WorkflowSpec& workflow,
                                                bool optimize) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> dag,
                             ParseWorkflow(workflow.language, workflow.source));
  if (!optimize) {
    return dag;
  }
  return OptimizeDag(*dag, DfsSchemas());
}

StatusOr<WorkflowPlan> Musketeer::Plan(const WorkflowSpec& workflow,
                                       const RunOptions& options) const {
  // Cancellation/deadline checkpoints between pipeline stages.
  ExecutionContext ctx = MakeContext(workflow, options);
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 1. Front-end translation to the IR.
  std::unique_ptr<Dag> dag;
  SchemaMap base_schemas;
  {
    Span span("stage.parse", "stage");
    MUSKETEER_ASSIGN_OR_RETURN(
        dag, ParseWorkflow(workflow.language, workflow.source));
    base_schemas = DfsSchemas();
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  WorkflowPlan out;

  // 2. IR optimization.
  {
    Span span("stage.optimize", "stage");
    if (options.optimize_ir) {
      MUSKETEER_ASSIGN_OR_RETURN(
          dag, OptimizeDag(*dag, base_schemas, {}, &out.optimizer_stats));
    } else {
      MUSKETEER_RETURN_IF_ERROR(dag->Validate());
      MUSKETEER_RETURN_IF_ERROR(dag->InferSchemas(base_schemas).status());
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 3. Partitioning + automatic (or restricted) engine mapping. When a
  // runtime history exists, snapshot its calibration so job costs are in
  // measured-time units rather than raw simulated units.
  {
    Span span("stage.partition", "stage");
    RuntimeCalibration calibration;
    if (options.runtime_history != nullptr) {
      calibration = options.runtime_history->Calibration();
    }
    CostModel model(options.cluster, options.history, workflow.id,
                    options.conservative_first_run,
                    calibration.has_observations ? &calibration : nullptr);
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                               model.PredictSizes(*dag, DfsSizes()));
    PartitionOptions popts = options.partition;
    if (popts.engines.empty()) {
      popts.engines = options.engines;
    }
    MUSKETEER_ASSIGN_OR_RETURN(out.partitioning,
                               PartitionDag(*dag, model, sizes, popts));
    if (span.active()) {
      span.SetAttr("jobs", std::to_string(out.partitioning.jobs.size()));
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 4. Code generation.
  {
    Span span("stage.codegen", "stage");
    for (const JobAssignment& job : out.partitioning.jobs) {
      MUSKETEER_ASSIGN_OR_RETURN(
          JobPlan plan, BackendFor(job.engine)
                            .GeneratePlan(*dag, job.ops, base_schemas,
                                          options.codegen));
      out.plans.push_back(std::move(plan));
    }
  }

  // Remember the sink relations so Execute() can collect outputs without
  // re-deriving the DAG.
  for (int sink : dag->Sinks()) {
    out.sink_relations.push_back(dag->node(sink).output);
  }
  // Retain the DAG and base schemas for cross-engine failover re-planning.
  out.base_schemas = std::move(base_schemas);
  out.dag = std::move(dag);
  return out;
}

StatusOr<RunResult> Musketeer::Execute(const WorkflowSpec& workflow,
                                       const WorkflowPlan& plan,
                                       const RunOptions& options) {
  RunResult result;
  result.partitioning = plan.partitioning;
  result.plans = plan.plans;
  result.optimizer_stats = plan.optimizer_stats;

  // 5. Execution with critical-path scheduling: a job starts when every job
  // producing one of its inputs has finished; independent jobs overlap.
  // DFS traffic is attributed to this run with a thread-scoped counter (the
  // engines record bytes on this thread), so concurrent workflows against
  // the same DFS do not pollute each other's deltas.
  Span exec_span("stage.execute", "stage");
  ScopedDfsRunCounters run_bytes;
  static Counter& retries_counter =
      MetricsRegistry::Global().counter("musketeer.execute.retries");
  static Counter& failovers_counter =
      MetricsRegistry::Global().counter("musketeer.execute.failovers");
  ExecutionContext ctx = MakeContext(workflow, options);
  const int max_attempts = std::max(1, ctx.retry.max_attempts);
  std::unordered_map<std::string, SimSeconds> ready_at;  // relation -> time
  SimSeconds makespan = 0;
  int predicted_jobs = 0;
  double error_sum = 0;
  for (size_t i = 0; i < result.plans.size(); ++i) {
    JobPlan& job = result.plans[i];
    SimSeconds start = 0;
    for (const std::string& in : job.inputs) {
      auto it = ready_at.find(in);
      if (it != ready_at.end()) {
        start = std::max(start, it->second);
      }
    }

    // Retry/failover dispatch: up to max_attempts per engine; on exhaustion,
    // re-plan the job on the next-cheapest capable engine (when enabled).
    // Attempt numbers are global across engines so the fault injector's
    // (workflow, job@engine, attempt) key never repeats within a run.
    JobRecovery rec;
    rec.job = job.name;
    rec.planned_engine = job.engine;
    std::vector<EngineKind> tried;
    JobResult jr;
    Status last_error = OkStatus();
    int global_attempt = 0;
    for (bool succeeded = false; !succeeded;) {
      tried.push_back(job.engine);
      const std::string engine_name = EngineKindName(job.engine);
      for (int local = 1; local <= max_attempts; ++local) {
        ++global_attempt;
        ctx.attempt = global_attempt;
        if (local > 1) {
          MUSKETEER_RETURN_IF_ERROR(BackoffSleep(
              ctx.retry.BackoffFor(local, job.name + "@" + engine_name), ctx));
        }
        MUSKETEER_RETURN_IF_ERROR(ctx.Check());
        // Mirror the injector's (deterministic) decision for accounting;
        // ExecuteJob makes the identical call and fails accordingly.
        if (ctx.faults.ShouldFail(workflow.id, job.name + "@" + engine_name,
                                  global_attempt)) {
          ++rec.faults_injected;
        }
        StatusOr<JobResult> attempt = ExecuteJob(job, options.cluster, dfs_, ctx);
        ++rec.attempts;
        rec.attempt_log.push_back(
            {global_attempt, job.engine,
             attempt.ok() ? StatusCode::kOk : attempt.status().code()});
        if (attempt.ok()) {
          jr = std::move(attempt).value();
          succeeded = true;
          break;
        }
        last_error = Annotate(
            attempt.status(), workflow.id + "/" + job.name + "@" + engine_name +
                                  " attempt " + std::to_string(global_attempt));
        if (!IsRetryable(last_error.code())) {
          return last_error;
        }
        MLOG_INFO << "job attempt failed (" << last_error.ToString() << ")";
        if (local < max_attempts) {
          retries_counter.Increment();
          ++result.total_retries;
        }
      }
      if (succeeded) {
        break;
      }
      // Retries exhausted on this engine: cross-engine failover.
      if (!ctx.retry.enable_failover || plan.dag == nullptr) {
        return Annotate(last_error, "retries exhausted on " +
                                        std::string(EngineKindName(job.engine)));
      }
      StatusOr<EngineKind> next =
          NextFailoverEngine(workflow, plan, plan.partitioning.jobs[i].ops,
                             options, DfsSizes(), tried);
      if (!next.ok()) {
        return Annotate(last_error,
                        "failover exhausted: " + next.status().message());
      }
      MUSKETEER_ASSIGN_OR_RETURN(
          JobPlan replan,
          BackendFor(*next).GeneratePlan(*plan.dag, plan.partitioning.jobs[i].ops,
                                         plan.base_schemas, options.codegen));
      job = std::move(replan);
      // The final failed attempt on the old engine continues as a failover.
      retries_counter.Increment();
      ++result.total_retries;
      failovers_counter.Increment();
      ++rec.failovers;
      ++result.total_failovers;
      MLOG_INFO << "failing over job '" << rec.job << "' to "
                << EngineKindName(job.engine);
    }
    rec.final_engine = job.engine;
    result.total_faults_injected += rec.faults_injected;
    result.recovery.push_back(std::move(rec));
    MLOG_INFO << jr.detail;
    // Calibration loop: predict this job's wall clock from the runtime
    // history (best available granularity), then record what actually
    // happened so the next run predicts better.
    if (options.runtime_history != nullptr) {
      const std::string engine = EngineKindName(job.engine);
      const std::string signature = job.name + "@" + engine;
      double predicted = options.runtime_history->PredictWallSeconds(
          workflow.id, signature, engine, jr.makespan);
      result.predicted_wall_seconds += predicted;
      result.measured_wall_seconds += jr.wall_seconds;
      error_sum += std::abs(predicted - jr.wall_seconds) /
                   std::max(jr.wall_seconds, 1e-9);
      ++predicted_jobs;
      options.runtime_history->RecordJob(workflow.id, signature, engine,
                                         jr.makespan, jr.wall_seconds);
    }
    SimSeconds finish = start + jr.makespan;
    for (const std::string& out : job.outputs) {
      ready_at[out] = finish;
    }
    makespan = std::max(makespan, finish);
    result.total_engine_time += jr.makespan;
    result.job_results.push_back(std::move(jr));
  }
  result.makespan = makespan;
  result.dfs_bytes_read = run_bytes.bytes_read();
  result.dfs_bytes_written = run_bytes.bytes_written();
  if (predicted_jobs > 0) {
    result.cost_model_error = error_sum / predicted_jobs;
  }
  if (exec_span.active()) {
    exec_span.SetAttr("workflow", workflow.id);
    exec_span.SetAttr("jobs", std::to_string(result.plans.size()));
  }

  // 6. Collect the workflow's sink relations.
  for (const std::string& name : plan.sink_relations) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      result.outputs[name] = *table;
    }
  }

  // 7. Record observed sizes for future runs (§5.2 "workflow history"):
  // every job-output relation plus the loop-body internals each engine
  // observed at steady state.
  if (options.history != nullptr) {
    for (const JobPlan& job : result.plans) {
      for (const std::string& out : job.outputs) {
        auto table = dfs_->Get(out);
        if (table.ok()) {
          options.history->Record(workflow.id, out, (*table)->nominal_bytes());
        }
      }
    }
    for (const JobResult& jr : result.job_results) {
      for (const auto& [relation, bytes] : jr.observed_sizes) {
        options.history->Record(workflow.id, relation, bytes);
      }
    }
  }
  return result;
}

StatusOr<RunResult> Musketeer::Run(const WorkflowSpec& workflow,
                                   const RunOptions& options) {
  // Pin the deadline at entry so a relative budget spans Plan + Execute
  // instead of restarting at the plan/execute boundary.
  RunOptions pinned = options;
  pinned.absolute_deadline = EffectiveDeadline(options);
  MUSKETEER_ASSIGN_OR_RETURN(WorkflowPlan plan, Plan(workflow, pinned));
  return Execute(workflow, plan, pinned);
}

Status Musketeer::ProfileWorkflow(const WorkflowSpec& workflow,
                                  const RunOptions& options,
                                  HistoryStore* history) {
  RunOptions profiling = options;
  profiling.partition.enable_merging = false;
  profiling.partition.force_dp = true;  // per-operator jobs; DP is instant
  profiling.history = history;
  return Run(workflow, profiling).status();
}

}  // namespace musketeer
