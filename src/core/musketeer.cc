#include "src/core/musketeer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/obs/trace.h"

namespace musketeer {

SchemaMap Musketeer::DfsSchemas() const {
  SchemaMap out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->schema();
    }
  }
  return out;
}

RelationSizes Musketeer::DfsSizes() const {
  RelationSizes out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->nominal_bytes();
    }
  }
  return out;
}

StatusOr<std::unique_ptr<Dag>> Musketeer::Lower(const WorkflowSpec& workflow,
                                                bool optimize) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> dag,
                             ParseWorkflow(workflow.language, workflow.source));
  if (!optimize) {
    return dag;
  }
  return OptimizeDag(*dag, DfsSchemas());
}

StatusOr<WorkflowPlan> Musketeer::Plan(const WorkflowSpec& workflow,
                                       const RunOptions& options) const {
  // 1. Front-end translation to the IR.
  std::unique_ptr<Dag> dag;
  SchemaMap base_schemas;
  {
    Span span("stage.parse", "stage");
    MUSKETEER_ASSIGN_OR_RETURN(
        dag, ParseWorkflow(workflow.language, workflow.source));
    base_schemas = DfsSchemas();
  }

  WorkflowPlan out;

  // 2. IR optimization.
  {
    Span span("stage.optimize", "stage");
    if (options.optimize_ir) {
      MUSKETEER_ASSIGN_OR_RETURN(
          dag, OptimizeDag(*dag, base_schemas, {}, &out.optimizer_stats));
    } else {
      MUSKETEER_RETURN_IF_ERROR(dag->Validate());
      MUSKETEER_RETURN_IF_ERROR(dag->InferSchemas(base_schemas).status());
    }
  }

  // 3. Partitioning + automatic (or restricted) engine mapping. When a
  // runtime history exists, snapshot its calibration so job costs are in
  // measured-time units rather than raw simulated units.
  {
    Span span("stage.partition", "stage");
    RuntimeCalibration calibration;
    if (options.runtime_history != nullptr) {
      calibration = options.runtime_history->Calibration();
    }
    CostModel model(options.cluster, options.history, workflow.id,
                    options.conservative_first_run,
                    calibration.has_observations ? &calibration : nullptr);
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                               model.PredictSizes(*dag, DfsSizes()));
    PartitionOptions popts = options.partition;
    if (popts.engines.empty()) {
      popts.engines = options.engines;
    }
    MUSKETEER_ASSIGN_OR_RETURN(out.partitioning,
                               PartitionDag(*dag, model, sizes, popts));
    if (span.active()) {
      span.SetAttr("jobs", std::to_string(out.partitioning.jobs.size()));
    }
  }

  // 4. Code generation.
  {
    Span span("stage.codegen", "stage");
    for (const JobAssignment& job : out.partitioning.jobs) {
      MUSKETEER_ASSIGN_OR_RETURN(
          JobPlan plan, BackendFor(job.engine)
                            .GeneratePlan(*dag, job.ops, base_schemas,
                                          options.codegen));
      out.plans.push_back(std::move(plan));
    }
  }

  // Remember the sink relations so Execute() can collect outputs without
  // re-deriving the DAG.
  for (int sink : dag->Sinks()) {
    out.sink_relations.push_back(dag->node(sink).output);
  }
  return out;
}

StatusOr<RunResult> Musketeer::Execute(const WorkflowSpec& workflow,
                                       const WorkflowPlan& plan,
                                       const RunOptions& options) {
  RunResult result;
  result.partitioning = plan.partitioning;
  result.plans = plan.plans;
  result.optimizer_stats = plan.optimizer_stats;

  // 5. Execution with critical-path scheduling: a job starts when every job
  // producing one of its inputs has finished; independent jobs overlap.
  // DFS traffic is attributed to this run with a thread-scoped counter (the
  // engines record bytes on this thread), so concurrent workflows against
  // the same DFS do not pollute each other's deltas.
  Span exec_span("stage.execute", "stage");
  ScopedDfsRunCounters run_bytes;
  std::unordered_map<std::string, SimSeconds> ready_at;  // relation -> time
  SimSeconds makespan = 0;
  int predicted_jobs = 0;
  double error_sum = 0;
  for (size_t i = 0; i < result.plans.size(); ++i) {
    const JobPlan& job = result.plans[i];
    SimSeconds start = 0;
    for (const std::string& in : job.inputs) {
      auto it = ready_at.find(in);
      if (it != ready_at.end()) {
        start = std::max(start, it->second);
      }
    }
    MUSKETEER_ASSIGN_OR_RETURN(JobResult jr,
                               ExecuteJob(job, options.cluster, dfs_));
    MLOG_INFO << jr.detail;
    // Calibration loop: predict this job's wall clock from the runtime
    // history (best available granularity), then record what actually
    // happened so the next run predicts better.
    if (options.runtime_history != nullptr) {
      const std::string engine = EngineKindName(job.engine);
      const std::string signature = job.name + "@" + engine;
      double predicted = options.runtime_history->PredictWallSeconds(
          workflow.id, signature, engine, jr.makespan);
      result.predicted_wall_seconds += predicted;
      result.measured_wall_seconds += jr.wall_seconds;
      error_sum += std::abs(predicted - jr.wall_seconds) /
                   std::max(jr.wall_seconds, 1e-9);
      ++predicted_jobs;
      options.runtime_history->RecordJob(workflow.id, signature, engine,
                                         jr.makespan, jr.wall_seconds);
    }
    SimSeconds finish = start + jr.makespan;
    for (const std::string& out : job.outputs) {
      ready_at[out] = finish;
    }
    makespan = std::max(makespan, finish);
    result.total_engine_time += jr.makespan;
    result.job_results.push_back(std::move(jr));
  }
  result.makespan = makespan;
  result.dfs_bytes_read = run_bytes.bytes_read();
  result.dfs_bytes_written = run_bytes.bytes_written();
  if (predicted_jobs > 0) {
    result.cost_model_error = error_sum / predicted_jobs;
  }
  if (exec_span.active()) {
    exec_span.SetAttr("workflow", workflow.id);
    exec_span.SetAttr("jobs", std::to_string(result.plans.size()));
  }

  // 6. Collect the workflow's sink relations.
  for (const std::string& name : plan.sink_relations) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      result.outputs[name] = *table;
    }
  }

  // 7. Record observed sizes for future runs (§5.2 "workflow history"):
  // every job-output relation plus the loop-body internals each engine
  // observed at steady state.
  if (options.history != nullptr) {
    for (const JobPlan& job : result.plans) {
      for (const std::string& out : job.outputs) {
        auto table = dfs_->Get(out);
        if (table.ok()) {
          options.history->Record(workflow.id, out, (*table)->nominal_bytes());
        }
      }
    }
    for (const JobResult& jr : result.job_results) {
      for (const auto& [relation, bytes] : jr.observed_sizes) {
        options.history->Record(workflow.id, relation, bytes);
      }
    }
  }
  return result;
}

StatusOr<RunResult> Musketeer::Run(const WorkflowSpec& workflow,
                                   const RunOptions& options) {
  MUSKETEER_ASSIGN_OR_RETURN(WorkflowPlan plan, Plan(workflow, options));
  return Execute(workflow, plan, options);
}

Status Musketeer::ProfileWorkflow(const WorkflowSpec& workflow,
                                  const RunOptions& options,
                                  HistoryStore* history) {
  RunOptions profiling = options;
  profiling.partition.enable_merging = false;
  profiling.partition.force_dp = true;  // per-operator jobs; DP is instant
  profiling.history = history;
  return Run(workflow, profiling).status();
}

}  // namespace musketeer
