#include "src/core/musketeer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/core/job_dispatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace musketeer {

namespace {

// Resolves the run's absolute deadline: an explicit absolute point wins,
// otherwise a non-zero relative budget starts counting now.
DeadlinePoint EffectiveDeadline(const RunOptions& options) {
  if (options.absolute_deadline.has_value()) {
    return options.absolute_deadline;
  }
  if (options.deadline.count() > 0) {
    return std::chrono::steady_clock::now() + options.deadline;
  }
  return std::nullopt;
}

ExecutionContext MakeContext(const WorkflowSpec& workflow,
                             const RunOptions& options) {
  ExecutionContext ctx;
  ctx.workflow_id = workflow.id;
  ctx.cancel = options.cancel;
  ctx.deadline = EffectiveDeadline(options);
  ctx.faults = FaultInjector(options.fault_rate, options.fault_seed);
  ctx.retry = options.retry;
  if (ctx.retry.backoff_seed == 0) {
    // Default the jitter stream to the fault seed so a single seed pins the
    // whole run's randomness.
    ctx.retry.backoff_seed = options.fault_seed;
  }
  return ctx;
}

}  // namespace

SchemaMap Musketeer::DfsSchemas() const {
  SchemaMap out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->schema();
    }
  }
  return out;
}

RelationSizes Musketeer::DfsSizes() const {
  RelationSizes out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->nominal_bytes();
    }
  }
  return out;
}

StatusOr<std::unique_ptr<Dag>> Musketeer::Lower(const WorkflowSpec& workflow,
                                                bool optimize) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> dag,
                             ParseWorkflow(workflow.language, workflow.source));
  if (!optimize) {
    return dag;
  }
  return OptimizeDag(*dag, DfsSchemas());
}

StatusOr<WorkflowPlan> Musketeer::Plan(const WorkflowSpec& workflow,
                                       const RunOptions& options) const {
  // Cancellation/deadline checkpoints between pipeline stages.
  ExecutionContext ctx = MakeContext(workflow, options);
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 1. Front-end translation to the IR.
  std::unique_ptr<Dag> dag;
  SchemaMap base_schemas;
  {
    Span span("stage.parse", "stage");
    MUSKETEER_ASSIGN_OR_RETURN(
        dag, ParseWorkflow(workflow.language, workflow.source));
    base_schemas = DfsSchemas();
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  WorkflowPlan out;

  // 2. IR optimization.
  {
    Span span("stage.optimize", "stage");
    if (options.optimize_ir) {
      MUSKETEER_ASSIGN_OR_RETURN(
          dag, OptimizeDag(*dag, base_schemas, {}, &out.optimizer_stats));
    } else {
      MUSKETEER_RETURN_IF_ERROR(dag->Validate());
      MUSKETEER_RETURN_IF_ERROR(dag->InferSchemas(base_schemas).status());
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 3. Partitioning + automatic (or restricted) engine mapping. When a
  // runtime history exists, snapshot its calibration so job costs are in
  // measured-time units rather than raw simulated units.
  {
    Span span("stage.partition", "stage");
    RuntimeCalibration calibration;
    if (options.runtime_history != nullptr) {
      calibration = options.runtime_history->Calibration();
    }
    CostModel model(options.cluster, options.history, workflow.id,
                    options.conservative_first_run,
                    calibration.has_observations ? &calibration : nullptr);
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                               model.PredictSizes(*dag, DfsSizes()));
    PartitionOptions popts = options.partition;
    if (popts.engines.empty()) {
      popts.engines = options.engines;
    }
    MUSKETEER_ASSIGN_OR_RETURN(out.partitioning,
                               PartitionDag(*dag, model, sizes, popts));
    if (span.active()) {
      span.SetAttr("jobs", std::to_string(out.partitioning.jobs.size()));
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 4. Code generation.
  {
    Span span("stage.codegen", "stage");
    for (const JobAssignment& job : out.partitioning.jobs) {
      MUSKETEER_ASSIGN_OR_RETURN(
          JobPlan plan, BackendFor(job.engine)
                            .GeneratePlan(*dag, job.ops, base_schemas,
                                          options.codegen));
      out.plans.push_back(std::move(plan));
    }
  }

  // Remember the sink relations so Execute() can collect outputs without
  // re-deriving the DAG.
  for (int sink : dag->Sinks()) {
    out.sink_relations.push_back(dag->node(sink).output);
  }
  // Retain the DAG and base schemas for cross-engine failover re-planning.
  out.base_schemas = std::move(base_schemas);
  out.dag = std::move(dag);
  return out;
}

StatusOr<RunResult> Musketeer::Execute(const WorkflowSpec& workflow,
                                       const WorkflowPlan& plan,
                                       const RunOptions& options) {
  RunResult result;
  result.partitioning = plan.partitioning;
  result.plans = plan.plans;
  result.optimizer_stats = plan.optimizer_stats;

  // 5. Execution with critical-path scheduling: a job starts when every job
  // producing one of its inputs has finished; independent jobs overlap.
  // DFS traffic is attributed to this run with a thread-scoped counter (the
  // engines record bytes on this thread), so concurrent workflows against
  // the same DFS do not pollute each other's deltas.
  Span exec_span("stage.execute", "stage");
  ScopedDfsRunCounters run_bytes;
  ExecutionContext ctx = MakeContext(workflow, options);
  std::unordered_map<std::string, SimSeconds> ready_at;  // relation -> time
  SimSeconds makespan = 0;
  int predicted_jobs = 0;
  double error_sum = 0;
  for (size_t i = 0; i < result.plans.size(); ++i) {
    JobPlan& job = result.plans[i];
    SimSeconds start = 0;
    for (const std::string& in : job.inputs) {
      auto it = ready_at.find(in);
      if (it != ready_at.end()) {
        start = std::max(start, it->second);
      }
    }

    // Retry/failover dispatch (src/core/job_dispatch.h): up to max_attempts
    // per engine; on exhaustion, re-plan onto the next-cheapest capable
    // engine (when enabled). The shared dispatcher mutates `job` on failover
    // so result.plans[i] records what finally ran.
    JobDispatchEnv env;
    env.workflow = &workflow;
    env.plan = &plan;
    env.job_index = i;
    env.options = &options;
    env.run_attempt = [&](const JobPlan& j, const ExecutionContext& c) {
      return ExecuteJob(j, options.cluster, dfs_, c);
    };
    env.dfs_sizes = [this] { return DfsSizes(); };
    MUSKETEER_ASSIGN_OR_RETURN(JobDispatchOutcome outcome,
                               DispatchJobWithRecovery(&job, &ctx, env));
    JobResult jr = std::move(outcome.result);
    result.total_retries += outcome.retries;
    result.total_failovers += outcome.failovers;
    result.total_faults_injected += outcome.recovery.faults_injected;
    result.recovery.push_back(std::move(outcome.recovery));
    MLOG_INFO << jr.detail;
    // Calibration loop: predict this job's wall clock from the runtime
    // history (best available granularity), then record what actually
    // happened so the next run predicts better.
    if (options.runtime_history != nullptr) {
      const std::string engine = EngineKindName(job.engine);
      const std::string signature = job.name + "@" + engine;
      double predicted = options.runtime_history->PredictWallSeconds(
          workflow.id, signature, engine, jr.makespan);
      result.predicted_wall_seconds += predicted;
      result.measured_wall_seconds += jr.wall_seconds;
      error_sum += std::abs(predicted - jr.wall_seconds) /
                   std::max(jr.wall_seconds, 1e-9);
      ++predicted_jobs;
      options.runtime_history->RecordJob(workflow.id, signature, engine,
                                         jr.makespan, jr.wall_seconds);
    }
    SimSeconds finish = start + jr.makespan;
    for (const std::string& out : job.outputs) {
      ready_at[out] = finish;
    }
    makespan = std::max(makespan, finish);
    result.total_engine_time += jr.makespan;
    result.job_results.push_back(std::move(jr));
  }
  result.makespan = makespan;
  result.dfs_bytes_read = run_bytes.bytes_read();
  result.dfs_bytes_written = run_bytes.bytes_written();
  result.dfs_bytes_remote_read = run_bytes.bytes_remote_read();
  if (predicted_jobs > 0) {
    result.cost_model_error = error_sum / predicted_jobs;
  }
  if (exec_span.active()) {
    exec_span.SetAttr("workflow", workflow.id);
    exec_span.SetAttr("jobs", std::to_string(result.plans.size()));
  }

  // 6. Collect the workflow's sink relations.
  for (const std::string& name : plan.sink_relations) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      result.outputs[name] = *table;
    }
  }

  // 7. Record observed sizes for future runs (§5.2 "workflow history"):
  // every job-output relation plus the loop-body internals each engine
  // observed at steady state.
  if (options.history != nullptr) {
    for (const JobPlan& job : result.plans) {
      for (const std::string& out : job.outputs) {
        auto table = dfs_->Get(out);
        if (table.ok()) {
          options.history->Record(workflow.id, out, (*table)->nominal_bytes());
        }
      }
    }
    for (const JobResult& jr : result.job_results) {
      for (const auto& [relation, bytes] : jr.observed_sizes) {
        options.history->Record(workflow.id, relation, bytes);
      }
    }
  }
  return result;
}

StatusOr<RunResult> Musketeer::Run(const WorkflowSpec& workflow,
                                   const RunOptions& options) {
  // Pin the deadline at entry so a relative budget spans Plan + Execute
  // instead of restarting at the plan/execute boundary.
  RunOptions pinned = options;
  pinned.absolute_deadline = EffectiveDeadline(options);
  MUSKETEER_ASSIGN_OR_RETURN(WorkflowPlan plan, Plan(workflow, pinned));
  return Execute(workflow, plan, pinned);
}

Status Musketeer::ProfileWorkflow(const WorkflowSpec& workflow,
                                  const RunOptions& options,
                                  HistoryStore* history) {
  RunOptions profiling = options;
  profiling.partition.enable_merging = false;
  profiling.partition.force_dp = true;  // per-operator jobs; DP is instant
  profiling.history = history;
  return Run(workflow, profiling).status();
}

}  // namespace musketeer
