#include "src/core/musketeer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/base/logging.h"
#include "src/base/parallel.h"
#include "src/core/job_dispatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/stream/relation_channel.h"

namespace musketeer {

namespace {

// Resolves the run's absolute deadline: an explicit absolute point wins,
// otherwise a non-zero relative budget starts counting now.
DeadlinePoint EffectiveDeadline(const RunOptions& options) {
  if (options.absolute_deadline.has_value()) {
    return options.absolute_deadline;
  }
  if (options.deadline.count() > 0) {
    return std::chrono::steady_clock::now() + options.deadline;
  }
  return std::nullopt;
}

ExecutionContext MakeContext(const WorkflowSpec& workflow,
                             const RunOptions& options) {
  ExecutionContext ctx;
  ctx.workflow_id = workflow.id;
  ctx.cancel = options.cancel;
  ctx.deadline = EffectiveDeadline(options);
  ctx.faults = FaultInjector(options.fault_rate, options.fault_seed);
  ctx.retry = options.retry;
  if (ctx.retry.backoff_seed == 0) {
    // Default the jitter stream to the fault seed so a single seed pins the
    // whole run's randomness.
    ctx.retry.backoff_seed = options.fault_seed;
  }
  return ctx;
}

}  // namespace

SchemaMap Musketeer::DfsSchemas() const {
  SchemaMap out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->schema();
    }
  }
  return out;
}

RelationSizes Musketeer::DfsSizes() const {
  RelationSizes out;
  for (const std::string& name : dfs_->ListRelations()) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      out[name] = (*table)->nominal_bytes();
    }
  }
  return out;
}

StatusOr<std::unique_ptr<Dag>> Musketeer::Lower(const WorkflowSpec& workflow,
                                                bool optimize) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::unique_ptr<Dag> dag,
                             ParseWorkflow(workflow.language, workflow.source));
  if (!optimize) {
    return dag;
  }
  return OptimizeDag(*dag, DfsSchemas());
}

StatusOr<WorkflowPlan> Musketeer::Plan(const WorkflowSpec& workflow,
                                       const RunOptions& options) const {
  // Cancellation/deadline checkpoints between pipeline stages.
  ExecutionContext ctx = MakeContext(workflow, options);
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 1. Front-end translation to the IR.
  std::unique_ptr<Dag> dag;
  SchemaMap base_schemas;
  {
    Span span("stage.parse", "stage");
    MUSKETEER_ASSIGN_OR_RETURN(
        dag, ParseWorkflow(workflow.language, workflow.source));
    base_schemas = DfsSchemas();
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  WorkflowPlan out;

  // 2. IR optimization.
  {
    Span span("stage.optimize", "stage");
    if (options.optimize_ir) {
      MUSKETEER_ASSIGN_OR_RETURN(
          dag, OptimizeDag(*dag, base_schemas, {}, &out.optimizer_stats));
    } else {
      MUSKETEER_RETURN_IF_ERROR(dag->Validate());
      MUSKETEER_RETURN_IF_ERROR(dag->InferSchemas(base_schemas).status());
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 3. Partitioning + automatic (or restricted) engine mapping. When a
  // runtime history exists, snapshot its calibration so job costs are in
  // measured-time units rather than raw simulated units.
  {
    Span span("stage.partition", "stage");
    RuntimeCalibration calibration;
    if (options.runtime_history != nullptr) {
      calibration = options.runtime_history->Calibration();
    }
    CostModel model(options.cluster, options.history, workflow.id,
                    options.conservative_first_run,
                    calibration.has_observations ? &calibration : nullptr);
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<Bytes> sizes,
                               model.PredictSizes(*dag, DfsSizes()));
    PlannerConfig pconfig = options.planner;
    if (pconfig.engines.empty()) {
      pconfig.engines = options.engines;
    }
    MUSKETEER_ASSIGN_OR_RETURN(out.partitioning,
                               PartitionWorkflow(*dag, model, sizes, pconfig));
    if (span.active()) {
      span.SetAttr("jobs", std::to_string(out.partitioning.jobs.size()));
      span.SetAttr("strategy", out.partitioning.strategy);
    }
  }
  MUSKETEER_RETURN_IF_ERROR(ctx.Check());

  // 4. Code generation.
  {
    Span span("stage.codegen", "stage");
    for (const JobAssignment& job : out.partitioning.jobs) {
      MUSKETEER_ASSIGN_OR_RETURN(
          JobPlan plan, BackendFor(job.engine)
                            .GeneratePlan(*dag, job.ops, base_schemas,
                                          options.codegen));
      out.plans.push_back(std::move(plan));
    }
  }

  // Remember the sink relations so Execute() can collect outputs without
  // re-deriving the DAG.
  for (int sink : dag->Sinks()) {
    out.sink_relations.push_back(dag->node(sink).output);
  }
  // Retain the DAG and base schemas for cross-engine failover re-planning.
  out.base_schemas = std::move(base_schemas);
  out.dag = std::move(dag);
  return out;
}

StatusOr<RunResult> Musketeer::Execute(const WorkflowSpec& workflow,
                                       const WorkflowPlan& plan,
                                       const RunOptions& options) {
  RunResult result;
  result.partitioning = plan.partitioning;
  result.plans = plan.plans;
  result.optimizer_stats = plan.optimizer_stats;
  result.partition_strategy = plan.partitioning.strategy;

  // 5. Execution with critical-path scheduling: a job starts when every job
  // producing one of its inputs has finished; independent jobs overlap.
  // DFS traffic is attributed to this run with a thread-scoped counter (the
  // engines record bytes on this thread), so concurrent workflows against
  // the same DFS do not pollute each other's deltas.
  Span exec_span("stage.execute", "stage");
  ScopedDfsRunCounters run_bytes;
  ExecutionContext ctx = MakeContext(workflow, options);

  static Counter& reused_metric =
      MetricsRegistry::Global().counter("musketeer.stream.jobs_reused");
  static Counter& recomputed_metric =
      MetricsRegistry::Global().counter("musketeer.stream.jobs_recomputed");
  static Counter& edges_metric =
      MetricsRegistry::Global().counter("musketeer.stream.edges_pipelined");
  static Counter& fallback_metric =
      MetricsRegistry::Global().counter("musketeer.stream.pipeline_fallbacks");
  static Counter& replans_metric =
      MetricsRegistry::Global().counter("musketeer.execute.replans");

  // Pipeline schedule: which producer→consumer edges skip the DFS barrier
  // and run over a RelationChannel, and which jobs therefore execute
  // together as one concurrent group. Edge sizes come from the history store
  // when available, else from the relation's current DFS incarnation.
  PipelineSchedule sched;
  sched.group_of.assign(result.plans.size(), -1);
  if (options.pipeline != PipelineMode::kOff) {
    PipelineOptions popts;
    popts.mode = options.pipeline;
    popts.channel_capacity = options.pipeline_channel_capacity;
    popts.batch_rows = options.pipeline_batch_rows;
    auto size_of = [&](const std::string& relation) -> Bytes {
      if (options.history != nullptr) {
        auto bytes = options.history->Lookup(workflow.id, relation);
        if (bytes.has_value()) {
          return *bytes;
        }
      }
      auto table = dfs_->Get(relation);
      return table.ok() ? (*table)->nominal_bytes() : 0;
    };
    sched = PlanPipelines(result.plans, plan.sink_relations, popts,
                          options.cluster, size_of);
    result.pipelined_edges = static_cast<int>(sched.edges.size());
    edges_metric.Increment(sched.edges.size());
  }

  std::unordered_map<std::string, SimSeconds> ready_at;  // relation -> time
  SimSeconds makespan = 0;
  int predicted_jobs = 0;
  double error_sum = 0;
  // DFS bytes charged on group-member threads (their ScopedDfsRunCounters
  // cannot propagate into `run_bytes`, which lives on this thread).
  Bytes extra_read = 0;
  Bytes extra_written = 0;
  Bytes extra_remote = 0;

  // Outcome of a job that ran ahead of its fold position (group execution)
  // or is being skipped entirely (fingerprint reuse).
  struct Pending {
    bool reused = false;
    JobDispatchOutcome outcome;  // valid when !reused
  };
  std::unordered_map<size_t, Pending> pending;
  std::vector<char> group_ran(sched.groups.size(), 0);

  // True when the job may be skipped: recorded fingerprint matches the
  // current input versions and its outputs sit in the DFS unmodified.
  auto reusable = [&](size_t i) {
    if (!options.incremental || options.fingerprints == nullptr) {
      return false;
    }
    const JobPlan& job = result.plans[i];
    return options.fingerprints->CanReuse(
        workflow.id, job.name, FingerprintJob(workflow.id, job, *dfs_), *dfs_);
  };

  // Retry/failover dispatch (src/core/job_dispatch.h): up to max_attempts
  // per engine; on exhaustion, re-plan onto the next-cheapest capable
  // engine (when enabled). The shared dispatcher mutates plans[i] on
  // failover so result.plans[i] records what finally ran.
  auto dispatch_barrier = [&](size_t i) {
    JobDispatchEnv env;
    env.workflow = &workflow;
    env.plan = &plan;
    env.job_index = i;
    // The run's (possibly re-planned) operator set for this job; the shared
    // plan is immutable, so failover re-costing must read the run's copy.
    env.ops = &result.partitioning.jobs[i].ops;
    env.options = &options;
    env.run_attempt = [&](const JobPlan& j, const ExecutionContext& c) {
      return ExecuteJob(j, options.cluster, dfs_, c);
    };
    env.dfs_sizes = [this] { return DfsSizes(); };
    return DispatchJobWithRecovery(&result.plans[i], &ctx, env);
  };

  // Executes one pipeline group: every non-reused member runs on its own
  // thread, wired together by bounded channels on the scheduled edges. A
  // member whose concurrent attempt fails falls back to the sequential
  // barrier dispatcher (channels to/from it resolve via abort/receiver-close,
  // and its inputs are in the DFS because producers always commit) — so a
  // pipelined run can degrade but never produce different bytes.
  auto run_group = [&](const std::vector<size_t>& members) -> Status {
    // Reuse decisions first, in plan order. A member is only reusable when
    // its in-group upstream producers are reused too: a recomputing producer
    // will bump its output versions at commit, which must invalidate this
    // member exactly like it would in sequential execution.
    std::unordered_set<size_t> reuse_set;
    for (size_t m : members) {
      bool upstream_reused = true;
      for (const std::string& in : result.plans[m].inputs) {
        for (size_t p : members) {
          if (p != m && reuse_set.count(p) == 0 &&
              std::find(result.plans[p].outputs.begin(),
                        result.plans[p].outputs.end(),
                        in) != result.plans[p].outputs.end()) {
            upstream_reused = false;
          }
        }
      }
      if (upstream_reused && reusable(m)) {
        reuse_set.insert(m);
      }
    }

    struct LiveRun {
      size_t index = 0;
      JobStreamIo io;
      StatusOr<JobResult> attempt = InternalError("not attempted");
      Bytes read = 0;
      Bytes written = 0;
      Bytes remote = 0;
    };
    std::unordered_map<size_t, LiveRun> runs;
    for (size_t m : members) {
      if (reuse_set.count(m) == 0) {
        LiveRun& r = runs[m];
        r.index = m;
        r.io.batch_rows = options.pipeline_batch_rows;
      }
    }

    // Channels exist only between two live members. Reused producer → live
    // consumer reads the producer's committed output from the DFS instead.
    std::vector<std::unique_ptr<RelationChannel>> channels;
    for (const PipelineEdge& edge : sched.edges) {
      auto producer = runs.find(edge.producer);
      auto consumer = runs.find(edge.consumer);
      if (producer == runs.end() || consumer == runs.end()) {
        continue;
      }
      channels.push_back(std::make_unique<RelationChannel>(
          edge.relation, options.pipeline_channel_capacity));
      producer->second.io.outputs[edge.relation] = channels.back().get();
      consumer->second.io.inputs[edge.relation] = channels.back().get();
    }

    const bool concurrent = !channels.empty();
    if (concurrent) {
      // Group members inherit this thread's kernel parallelism so a
      // pipelined run honors the same --threads budget as a barrier run.
      const int width = ParallelThreads();
      std::vector<std::thread> threads;
      threads.reserve(runs.size());
      for (auto& [m, run] : runs) {
        LiveRun* r = &run;
        threads.emplace_back([this, r, &result, &options, &ctx, width] {
          ScopedParallelThreads inherit(width);
          ScopedDfsRunCounters scope;
          ExecutionContext attempt_ctx = ctx;
          attempt_ctx.attempt = 1;
          r->attempt = ExecuteJob(result.plans[r->index], options.cluster,
                                  dfs_, attempt_ctx, &r->io);
          if (!r->attempt.ok()) {
            // Unblock producers still pushing toward this failed consumer.
            for (const auto& [relation, channel] : r->io.inputs) {
              channel->CloseReceiver();
            }
          }
          r->read = scope.bytes_read();
          r->written = scope.bytes_written();
          r->remote = scope.bytes_remote_read();
        });
      }
      for (std::thread& t : threads) {
        t.join();
      }
      MUSKETEER_RETURN_IF_ERROR(ctx.Check());
    }

    for (size_t m : members) {
      if (reuse_set.count(m) > 0) {
        pending[m].reused = true;
        continue;
      }
      LiveRun& r = runs[m];
      if (concurrent && r.attempt.ok()) {
        extra_read += r.read;
        extra_written += r.written;
        extra_remote += r.remote;
        Pending p;
        p.outcome.result = std::move(r.attempt).value();
        p.outcome.recovery.job = result.plans[m].name;
        p.outcome.recovery.planned_engine = result.plans[m].engine;
        p.outcome.recovery.final_engine = result.plans[m].engine;
        p.outcome.recovery.attempts = 1;
        p.outcome.recovery.attempt_log.push_back(
            JobAttempt{1, result.plans[m].engine, StatusCode::kOk});
        pending[m] = std::move(p);
        continue;
      }
      if (concurrent) {
        MLOG_INFO << "pipelined attempt for '" << result.plans[m].name
                  << "' failed (" << r.attempt.status().message()
                  << "); falling back to barrier dispatch";
        fallback_metric.Increment();
      }
      MUSKETEER_ASSIGN_OR_RETURN(JobDispatchOutcome outcome,
                                 dispatch_barrier(m));
      Pending p;
      p.outcome = std::move(outcome);
      pending[m] = std::move(p);
    }
    return OkStatus();
  };

  // Online re-planning signal (DESIGN.md "Planner at scale"): the most
  // recently folded job's predicted vs measured wall seconds. Invalid when
  // that job was reused or no runtime history is attached.
  double last_predicted = 0;
  double last_measured = 0;
  bool last_job_measured = false;
  int replans_done = 0;

  // Folds one job's outcome into the result arrays (which stay in plan
  // order regardless of when the job physically ran).
  auto fold = [&](size_t i, Pending&& p) {
    last_job_measured = false;
    JobPlan& job = result.plans[i];
    SimSeconds start = 0;
    for (const std::string& in : job.inputs) {
      auto it = ready_at.find(in);
      if (it != ready_at.end()) {
        start = std::max(start, it->second);
      }
    }
    JobResult jr;
    if (p.reused) {
      jr.reused = true;
      jr.detail = std::string(EngineKindName(job.engine)) + " job '" +
                  job.name + "': reused (fingerprint match, " +
                  std::to_string(job.outputs.size()) +
                  " output(s) served from the DFS)";
      JobRecovery recovery;
      recovery.job = job.name;
      recovery.planned_engine = job.engine;
      recovery.final_engine = job.engine;
      result.recovery.push_back(std::move(recovery));
      ++result.jobs_reused;
      reused_metric.Increment();
    } else {
      jr = std::move(p.outcome.result);
      result.total_retries += p.outcome.retries;
      result.total_failovers += p.outcome.failovers;
      result.total_faults_injected += p.outcome.recovery.faults_injected;
      result.recovery.push_back(std::move(p.outcome.recovery));
      if (options.fingerprints != nullptr) {
        // Record against post-commit versions: that is exactly the state a
        // later resubmission fingerprints against before dispatching.
        std::vector<std::pair<std::string, uint64_t>> outputs;
        outputs.reserve(job.outputs.size());
        for (const std::string& out : job.outputs) {
          outputs.emplace_back(out, dfs_->VersionOf(out));
        }
        options.fingerprints->Record(workflow.id, job.name,
                                     FingerprintJob(workflow.id, job, *dfs_),
                                     std::move(outputs));
        if (options.incremental) {
          recomputed_metric.Increment();
        }
      }
    }
    MLOG_INFO << jr.detail;
    // Calibration loop: predict this job's wall clock from the runtime
    // history (best available granularity), then record what actually
    // happened so the next run predicts better. Reused jobs never ran, so
    // they neither consume nor contribute calibration signal.
    if (options.runtime_history != nullptr && !jr.reused) {
      const std::string engine = EngineKindName(job.engine);
      const std::string signature = job.name + "@" + engine;
      double predicted = options.runtime_history->PredictWallSeconds(
          workflow.id, signature, engine, jr.makespan);
      result.predicted_wall_seconds += predicted;
      result.measured_wall_seconds += jr.wall_seconds;
      error_sum += std::abs(predicted - jr.wall_seconds) /
                   std::max(jr.wall_seconds, 1e-9);
      ++predicted_jobs;
      options.runtime_history->RecordJob(workflow.id, signature, engine,
                                         jr.makespan, jr.wall_seconds);
      last_predicted = predicted;
      last_measured = jr.wall_seconds;
      last_job_measured = true;
    }
    SimSeconds finish = start + jr.makespan;
    for (const std::string& out : job.outputs) {
      ready_at[out] = finish;
    }
    makespan = std::max(makespan, finish);
    result.total_engine_time += jr.makespan;
    result.stream_batches += jr.stream_batches_out;
    result.stream_bytes += jr.stream_bytes_out;
    result.job_results.push_back(std::move(jr));
  };

  // Mid-run suffix re-planning: when the job just folded mispredicted by
  // more than the configured ratio, re-partition every not-yet-run job's
  // operators with the freshly recalibrated cost model and splice the new
  // jobs into the run's plan tail. The shared WorkflowPlan is never touched
  // (it may sit in the service's plan cache); only this run's copies change.
  // Regrouping moves job boundaries, not operator semantics, so outputs stay
  // bit-identical to a non-replanned run (asserted by planner_scale_test).
  auto maybe_replan = [&](size_t i) {
    if (options.planner.replan_threshold <= 0 || !last_job_measured ||
        options.runtime_history == nullptr || plan.dag == nullptr ||
        replans_done >= std::max(0, options.planner.max_replans)) {
      return;
    }
    if (RuntimeHistory::ErrorRatio(last_predicted, last_measured) <=
        options.planner.replan_threshold) {
      return;
    }
    const size_t remaining = result.plans.size() - (i + 1);
    if (remaining < 2) {
      return;  // nothing to regroup
    }
    std::vector<int> ops;
    for (size_t j = i + 1; j < result.plans.size(); ++j) {
      // Jobs that already ran ahead (pipeline groups) or will be reused are
      // committed; re-planning would execute their operators twice.
      if (pending.count(j) > 0 || sched.group_of[j] >= 0) {
        return;
      }
      const std::vector<int>& job_ops = result.partitioning.jobs[j].ops;
      ops.insert(ops.end(), job_ops.begin(), job_ops.end());
    }
    RuntimeCalibration calibration = options.runtime_history->Calibration();
    CostModel model(options.cluster, options.history, workflow.id,
                    options.conservative_first_run,
                    calibration.has_observations ? &calibration : nullptr);
    auto sizes = model.PredictSizes(*plan.dag, DfsSizes());
    if (!sizes.ok()) {
      return;
    }
    PlannerConfig pconfig = options.planner;
    if (pconfig.engines.empty()) {
      pconfig.engines = options.engines;
    }
    auto repart = PartitionRemainder(*plan.dag, model, *sizes, pconfig, ops);
    if (!repart.ok()) {
      return;
    }
    std::vector<JobPlan> new_plans;
    new_plans.reserve(repart->jobs.size());
    for (const JobAssignment& job : repart->jobs) {
      auto jp = BackendFor(job.engine)
                    .GeneratePlan(*plan.dag, job.ops, plan.base_schemas,
                                  options.codegen);
      if (!jp.ok()) {
        return;  // keep the original tail; re-planning is best-effort
      }
      new_plans.push_back(std::move(jp).value());
    }
    MLOG_INFO << "re-planning " << remaining << " remaining job(s) of '"
              << workflow.id << "' into " << new_plans.size()
              << " (prediction off by "
              << RuntimeHistory::ErrorRatio(last_predicted, last_measured)
              << "x, threshold " << options.planner.replan_threshold << ")";
    result.partitioning.jobs.resize(i + 1);
    for (JobAssignment& job : repart->jobs) {
      result.partitioning.jobs.push_back(std::move(job));
    }
    result.plans.resize(i + 1);
    for (JobPlan& jp : new_plans) {
      result.plans.push_back(std::move(jp));
    }
    sched.group_of.assign(result.plans.size(), -1);
    ++result.replans;
    ++replans_done;
    replans_metric.Increment();
  };

  for (size_t i = 0; i < result.plans.size(); ++i) {
    if (pending.count(i) == 0) {
      const int g = sched.group_of[i];
      if (g >= 0 && !group_ran[static_cast<size_t>(g)]) {
        group_ran[static_cast<size_t>(g)] = 1;
        MUSKETEER_RETURN_IF_ERROR(run_group(sched.groups[static_cast<size_t>(g)]));
      }
    }
    auto it = pending.find(i);
    if (it != pending.end()) {
      Pending p = std::move(it->second);
      pending.erase(it);
      fold(i, std::move(p));
      maybe_replan(i);
      continue;
    }
    if (reusable(i)) {
      Pending p;
      p.reused = true;
      fold(i, std::move(p));
      continue;
    }
    MUSKETEER_ASSIGN_OR_RETURN(JobDispatchOutcome outcome, dispatch_barrier(i));
    Pending p;
    p.outcome = std::move(outcome);
    fold(i, std::move(p));
    maybe_replan(i);
  }
  result.makespan = makespan;
  result.dfs_bytes_read = run_bytes.bytes_read() + extra_read;
  result.dfs_bytes_written = run_bytes.bytes_written() + extra_written;
  result.dfs_bytes_remote_read = run_bytes.bytes_remote_read() + extra_remote;
  if (predicted_jobs > 0) {
    result.cost_model_error = error_sum / predicted_jobs;
  }
  if (exec_span.active()) {
    exec_span.SetAttr("workflow", workflow.id);
    exec_span.SetAttr("jobs", std::to_string(result.plans.size()));
  }

  // 6. Collect the workflow's sink relations.
  for (const std::string& name : plan.sink_relations) {
    auto table = dfs_->Get(name);
    if (table.ok()) {
      result.outputs[name] = *table;
    }
  }

  // 7. Record observed sizes for future runs (§5.2 "workflow history"):
  // every job-output relation plus the loop-body internals each engine
  // observed at steady state.
  if (options.history != nullptr) {
    for (const JobPlan& job : result.plans) {
      for (const std::string& out : job.outputs) {
        auto table = dfs_->Get(out);
        if (table.ok()) {
          options.history->Record(workflow.id, out, (*table)->nominal_bytes());
        }
      }
    }
    for (const JobResult& jr : result.job_results) {
      for (const auto& [relation, bytes] : jr.observed_sizes) {
        options.history->Record(workflow.id, relation, bytes);
      }
    }
  }
  return result;
}

StatusOr<RunResult> Musketeer::Run(const WorkflowSpec& workflow,
                                   const RunOptions& options) {
  // Pin the deadline at entry so a relative budget spans Plan + Execute
  // instead of restarting at the plan/execute boundary.
  RunOptions pinned = options;
  pinned.absolute_deadline = EffectiveDeadline(options);
  MUSKETEER_ASSIGN_OR_RETURN(WorkflowPlan plan, Plan(workflow, pinned));
  return Execute(workflow, plan, pinned);
}

Status Musketeer::ProfileWorkflow(const WorkflowSpec& workflow,
                                  const RunOptions& options,
                                  HistoryStore* history) {
  RunOptions profiling = options;
  profiling.planner.enable_merging = false;
  // Per-operator jobs; DP is instant.
  profiling.planner.strategy = PartitionStrategyKind::kDp;
  profiling.history = history;
  return Run(workflow, profiling).status();
}

}  // namespace musketeer
