// Shared tokenizer for the four front-end languages (BEER, HiveQL subset,
// GAS DSL, Lindi). Keywords are not distinguished at the lexer level; parsers
// match identifiers case-insensitively.

#ifndef MUSKETEER_SRC_FRONTENDS_LEXER_H_
#define MUSKETEER_SRC_FRONTENDS_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace musketeer {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kDouble,
  kString,  // quoted literal, quotes stripped
  kSymbol,  // punctuation / operator, in `text`
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  int line = 0;

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  // Case-insensitive keyword match.
  bool IsKeyword(const char* kw) const;
};

// Tokenizes `source`. Comments run from '#' or '--' to end of line.
// Multi-character symbols recognized: <= >= != == => ->
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

// Cursor over a token stream with common helpers; parsers wrap this.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Next();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  // Consumes the token if it matches; returns whether it did.
  bool ConsumeSymbol(const char* s);
  bool ConsumeKeyword(const char* kw);

  // Consumes a required token or produces a descriptive error.
  Status ExpectSymbol(const char* s);
  Status ExpectKeyword(const char* kw);
  StatusOr<std::string> ExpectIdentifier(const char* what);

  // Error naming the current token and line.
  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_LEXER_H_
