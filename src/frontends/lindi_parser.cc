#include "src/frontends/lindi_parser.h"

#include <unordered_map>

#include "src/base/strings.h"
#include "src/frontends/expr_parser.h"
#include "src/frontends/lexer.h"

namespace musketeer {

namespace {

std::optional<AggFn> AggFnFromMethod(const std::string& name) {
  if (EqualsIgnoreCase(name, "Sum")) {
    return AggFn::kSum;
  }
  if (EqualsIgnoreCase(name, "Count")) {
    return AggFn::kCount;
  }
  if (EqualsIgnoreCase(name, "Min")) {
    return AggFn::kMin;
  }
  if (EqualsIgnoreCase(name, "Max")) {
    return AggFn::kMax;
  }
  if (EqualsIgnoreCase(name, "Avg")) {
    return AggFn::kAvg;
  }
  return std::nullopt;
}

class LindiParser {
 public:
  LindiParser(TokenCursor* cursor, Dag* dag) : cursor_(*cursor), dag_(dag) {}

  Status ParseAll() {
    while (!cursor_.AtEnd()) {
      MUSKETEER_RETURN_IF_ERROR(ParseStatement());
    }
    return OkStatus();
  }

 private:
  int ResolveRelation(const std::string& name) {
    auto it = defined_.find(name);
    if (it != defined_.end()) {
      return it->second;
    }
    int id = dag_->AddInput(name);
    defined_[name] = id;
    return id;
  }

  // Fresh unique name for chain intermediates.
  std::string TempName(const std::string& final_name) {
    return final_name + "__t" + std::to_string(temp_counter_++);
  }

  Status ParseStatement() {
    MUSKETEER_ASSIGN_OR_RETURN(std::string name,
                               cursor_.ExpectIdentifier("result name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
    MUSKETEER_ASSIGN_OR_RETURN(std::string source,
                               cursor_.ExpectIdentifier("source relation"));
    int cur = ResolveRelation(source);

    // Pending GroupBy columns awaiting aggregation methods.
    std::optional<std::vector<std::string>> pending_group;
    std::vector<NamedAgg> pending_aggs;

    while (cursor_.ConsumeSymbol(".")) {
      MUSKETEER_ASSIGN_OR_RETURN(std::string method,
                                 cursor_.ExpectIdentifier("method name"));
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));

      auto agg = AggFnFromMethod(method);
      if (agg.has_value()) {
        NamedAgg spec;
        spec.fn = *agg;
        if (!cursor_.Peek().IsSymbol(")")) {
          MUSKETEER_ASSIGN_OR_RETURN(spec.column, cursor_.ExpectIdentifier("column"));
          if (cursor_.ConsumeSymbol(",")) {
            MUSKETEER_ASSIGN_OR_RETURN(spec.output_name,
                                       cursor_.ExpectIdentifier("alias"));
          }
        } else if (spec.fn != AggFn::kCount) {
          return cursor_.ErrorHere(method + "() requires a column");
        }
        if (spec.output_name.empty()) {
          spec.output_name = AsciiToLower(AggFnName(spec.fn)) + "_" +
                             (spec.column.empty() ? "all" : spec.column);
        }
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        if (pending_group.has_value()) {
          pending_aggs.push_back(std::move(spec));
          // Flush when the chain ends or the next method is not an agg.
          if (!NextMethodIsAgg()) {
            cur = dag_->AddNode(
                OpKind::kGroupBy, NameFor(name), {cur},
                GroupByParams{*pending_group, std::move(pending_aggs)});
            pending_group.reset();
            pending_aggs.clear();
          }
        } else {
          cur = dag_->AddNode(OpKind::kAgg, NameFor(name), {cur},
                              AggParams{{std::move(spec)}});
        }
        continue;
      }

      if (pending_group.has_value()) {
        return cursor_.ErrorHere("GroupBy(...) must be followed by an aggregation");
      }

      if (EqualsIgnoreCase(method, "Select")) {
        std::vector<std::string> cols;
        do {
          MUSKETEER_ASSIGN_OR_RETURN(std::string col,
                                     cursor_.ExpectIdentifier("column"));
          cols.push_back(std::move(col));
        } while (cursor_.ConsumeSymbol(","));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        cur = dag_->AddNode(OpKind::kProject, NameFor(name), {cur},
                            ProjectParams{std::move(cols)});
      } else if (EqualsIgnoreCase(method, "Where")) {
        MUSKETEER_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpression(&cursor_));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        cur = dag_->AddNode(OpKind::kSelect, NameFor(name), {cur},
                            SelectParams{std::move(cond)});
      } else if (EqualsIgnoreCase(method, "Join")) {
        MUSKETEER_ASSIGN_OR_RETURN(std::string other,
                                   cursor_.ExpectIdentifier("relation"));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
        MUSKETEER_ASSIGN_OR_RETURN(std::string lk, cursor_.ExpectIdentifier("column"));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
        MUSKETEER_ASSIGN_OR_RETURN(std::string rk, cursor_.ExpectIdentifier("column"));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        int ri = ResolveRelation(other);
        cur = dag_->AddNode(OpKind::kJoin, NameFor(name), {cur, ri},
                            JoinParams{std::move(lk), std::move(rk)});
      } else if (EqualsIgnoreCase(method, "GroupBy")) {
        std::vector<std::string> cols;
        do {
          MUSKETEER_ASSIGN_OR_RETURN(std::string col,
                                     cursor_.ExpectIdentifier("column"));
          cols.push_back(std::move(col));
        } while (cursor_.ConsumeSymbol(","));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        pending_group = std::move(cols);
      } else if (EqualsIgnoreCase(method, "Union") ||
                 EqualsIgnoreCase(method, "Intersect") ||
                 EqualsIgnoreCase(method, "Except")) {
        MUSKETEER_ASSIGN_OR_RETURN(std::string other,
                                   cursor_.ExpectIdentifier("relation"));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        int ri = ResolveRelation(other);
        OpKind kind = OpKind::kUnion;
        OpParams params = UnionParams{};
        if (EqualsIgnoreCase(method, "Intersect")) {
          kind = OpKind::kIntersect;
          params = IntersectParams{};
        } else if (EqualsIgnoreCase(method, "Except")) {
          kind = OpKind::kDifference;
          params = DifferenceParams{};
        }
        cur = dag_->AddNode(kind, NameFor(name), {cur, ri}, std::move(params));
      } else if (EqualsIgnoreCase(method, "Distinct")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        cur = dag_->AddNode(OpKind::kDistinct, NameFor(name), {cur},
                            DistinctParams{});
      } else if (EqualsIgnoreCase(method, "Map")) {
        std::vector<NamedExpr> outputs;
        do {
          MUSKETEER_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(&cursor_));
          std::string out;
          if (cursor_.ConsumeKeyword("AS")) {
            MUSKETEER_ASSIGN_OR_RETURN(out, cursor_.ExpectIdentifier("column"));
          } else if (e->kind() == ExprKind::kColumn) {
            out = e->column_name();
          } else {
            return cursor_.ErrorHere("computed Map column needs 'AS name'");
          }
          outputs.push_back(NamedExpr{std::move(out), std::move(e)});
        } while (cursor_.ConsumeSymbol(","));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        cur = dag_->AddNode(OpKind::kMap, NameFor(name), {cur},
                            MapParams{std::move(outputs)});
      } else if (EqualsIgnoreCase(method, "Top")) {
        MUSKETEER_ASSIGN_OR_RETURN(std::string col, cursor_.ExpectIdentifier("column"));
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
        if (cursor_.Peek().kind != TokenKind::kInteger) {
          return cursor_.ErrorHere("expected integer N");
        }
        int64_t n = cursor_.Next().int_value;
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        cur = dag_->AddNode(OpKind::kTopN, NameFor(name), {cur},
                            TopNParams{std::move(col), n});
      } else {
        return cursor_.ErrorHere("unknown Lindi method '" + method + "'");
      }
    }

    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));
    if (pending_group.has_value()) {
      return cursor_.ErrorHere("GroupBy(...) chain missing its aggregation");
    }
    // The last chain node must carry the statement's name; earlier nodes got
    // temporaries. If the statement was a bare alias (no methods), add a
    // DISTINCT-free pass-through via PROJECT of all columns is unnecessary —
    // instead simply alias in the symbol table.
    if (dag_->node(cur).output != name) {
      if (dag_->node(cur).kind == OpKind::kInput) {
        // Pure alias: name = rel;
        defined_[name] = cur;
        return OkStatus();
      }
      dag_->mutable_node(cur)->output = name;
    }
    if (defined_.count(name) > 0 && defined_[name] != cur) {
      return cursor_.ErrorHere("relation '" + name + "' already defined");
    }
    defined_[name] = cur;
    return OkStatus();
  }

  // Names the node being added: temporaries while more methods follow, the
  // final name handled in ParseStatement by renaming the last node.
  std::string NameFor(const std::string& final_name) {
    return TempName(final_name);
  }

  bool NextMethodIsAgg() {
    if (!cursor_.Peek().IsSymbol(".")) {
      return false;
    }
    const Token& m = cursor_.Peek(1);
    return m.kind == TokenKind::kIdentifier && AggFnFromMethod(m.text).has_value();
  }

  TokenCursor& cursor_;
  Dag* dag_;
  std::unordered_map<std::string, int> defined_;
  int temp_counter_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<Dag>> LindiFrontend::Parse(const std::string& source) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  auto dag = std::make_unique<Dag>();
  LindiParser parser(&cursor, dag.get());
  MUSKETEER_RETURN_IF_ERROR(parser.ParseAll());
  MUSKETEER_RETURN_IF_ERROR(dag->Validate());
  return dag;
}

}  // namespace musketeer
