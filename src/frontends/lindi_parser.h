// Lindi front-end: a LINQ-style chained-operator language (the paper's Lindi
// is the LINQ-like layer over Naiad). Each statement pipes a relation through
// a method chain and names the result:
//
//   name = rel.Select(col, col...);          -- projection
//   name = rel.Where(expr);                  -- filter
//   name = rel.Join(other, leftKey, rightKey);
//   name = rel.GroupBy(col, ...).Sum(col);   -- also Max/Min/Count/Avg;
//                                            -- chain several aggregations
//   name = rel.Union(other);
//   name = rel.Intersect(other);
//   name = rel.Except(other);
//   name = rel.Distinct();
//   name = rel.Count();                      -- global aggregate
//   name = rel.Map(expr AS col, ...);        -- computed projection
//   name = rel.Top(col, n);
//
// Methods chain arbitrarily: a = x.Where(p > 10).Select(id, p).Distinct();
// Aggregation output columns are named fn_column (e.g. "max_price") unless
// given as Max(price, alias).

#ifndef MUSKETEER_SRC_FRONTENDS_LINDI_PARSER_H_
#define MUSKETEER_SRC_FRONTENDS_LINDI_PARSER_H_

#include "src/frontends/frontend.h"

namespace musketeer {

class LindiFrontend : public Frontend {
 public:
  FrontendLanguage language() const override { return FrontendLanguage::kLindi; }
  StatusOr<std::unique_ptr<Dag>> Parse(const std::string& source) const override;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_LINDI_PARSER_H_
