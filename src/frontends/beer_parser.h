// BEER: Musketeer's own SQL-like workflow DSL with support for iteration.
//
// A workflow is a sequence of statements, each defining one named relation:
//
//   name = SELECT col[, col...] FROM rel [WHERE expr];       -- '*' keeps all
//   name = JOIN relA, relB ON relA.k = relB.k;
//   name = CROSSJOIN relA, relB;
//   name = UNION relA, relB;
//   name = INTERSECT relA, relB;
//   name = DIFFERENCE relA, relB;
//   name = DISTINCT rel;
//   name = AGG fn(col) AS out[, fn(col) AS out...] FROM rel
//          [GROUP BY col[, col...]];             -- fn in SUM,COUNT,MIN,MAX,AVG
//   name = MAP expr AS out[, expr AS out...] FROM rel;       -- column algebra
//   name = MAX(col) FROM rel;                                -- extreme row
//   name = MIN(col) FROM rel;
//   name = TOPN(col, n) FROM rel;
//   name = SORT rel BY col[, col...];
//
// Iteration (the WHILE operator, §4.2):
//
//   WHILE <n> LOOP lv = init UPDATE next [, lv2 = init2 UPDATE next2] {
//     <statements using lv, lv2 and outer relations>
//   } YIELD rel AS name;
//
// Each iteration runs the body; afterwards every loop variable `lv` is
// rebound to the body relation `next`. After <n> iterations, the body
// relation `rel` becomes visible to the rest of the workflow as `name`.
//
// Relations referenced before being defined become workflow inputs (base
// relations read from the DFS).

#ifndef MUSKETEER_SRC_FRONTENDS_BEER_PARSER_H_
#define MUSKETEER_SRC_FRONTENDS_BEER_PARSER_H_

#include "src/frontends/frontend.h"

namespace musketeer {

class BeerFrontend : public Frontend {
 public:
  FrontendLanguage language() const override { return FrontendLanguage::kBeer; }
  StatusOr<std::unique_ptr<Dag>> Parse(const std::string& source) const override;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_BEER_PARSER_H_
