#include "src/frontends/hive_parser.h"

#include <unordered_map>

#include "src/base/strings.h"
#include "src/frontends/expr_parser.h"
#include "src/frontends/lexer.h"

namespace musketeer {

namespace {

struct SelectItem {
  bool is_agg = false;
  std::string column;
  AggFn fn = AggFn::kSum;
  std::string alias;  // output name for aggregations
};

std::optional<AggFn> AggFnFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "SUM")) {
    return AggFn::kSum;
  }
  if (EqualsIgnoreCase(name, "COUNT")) {
    return AggFn::kCount;
  }
  if (EqualsIgnoreCase(name, "MIN")) {
    return AggFn::kMin;
  }
  if (EqualsIgnoreCase(name, "MAX")) {
    return AggFn::kMax;
  }
  if (EqualsIgnoreCase(name, "AVG")) {
    return AggFn::kAvg;
  }
  return std::nullopt;
}

class HiveParser {
 public:
  HiveParser(TokenCursor* cursor, Dag* dag) : cursor_(*cursor), dag_(dag) {}

  Status ParseAll() {
    while (!cursor_.AtEnd()) {
      if (cursor_.Peek().IsKeyword("SELECT")) {
        MUSKETEER_RETURN_IF_ERROR(ParseSelect());
      } else {
        MUSKETEER_RETURN_IF_ERROR(ParseJoin());
      }
    }
    return OkStatus();
  }

 private:
  int ResolveRelation(const std::string& name) {
    auto it = defined_.find(name);
    if (it != defined_.end()) {
      return it->second;
    }
    int id = dag_->AddInput(name);
    defined_[name] = id;
    return id;
  }

  Status Define(const std::string& name, int node) {
    if (!defined_.emplace(name, node).second) {
      return cursor_.ErrorHere("relation '" + name + "' already defined");
    }
    return OkStatus();
  }

  Status ParseSelect() {
    cursor_.Next();  // SELECT
    std::vector<SelectItem> items;
    do {
      SelectItem item;
      MUSKETEER_ASSIGN_OR_RETURN(std::string first,
                                 cursor_.ExpectIdentifier("select item"));
      auto fn = AggFnFromName(first);
      if (fn.has_value() && cursor_.Peek().IsSymbol("(")) {
        cursor_.Next();  // (
        item.is_agg = true;
        item.fn = *fn;
        if (!cursor_.ConsumeSymbol("*")) {
          MUSKETEER_ASSIGN_OR_RETURN(item.column, cursor_.ExpectIdentifier("column"));
        } else if (item.fn != AggFn::kCount) {
          return cursor_.ErrorHere("'*' only valid in COUNT(*)");
        }
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
        // Optional alias identifier (not a keyword).
        if (cursor_.Peek().kind == TokenKind::kIdentifier &&
            !cursor_.Peek().IsKeyword("FROM")) {
          item.alias = cursor_.Next().text;
        } else {
          item.alias = AsciiToLower(AggFnName(item.fn)) + "_" +
                       (item.column.empty() ? "all" : item.column);
        }
      } else {
        // Plain column; strip an optional "rel." qualifier.
        item.column = first;
        if (cursor_.Peek().IsSymbol(".") &&
            cursor_.Peek(1).kind == TokenKind::kIdentifier) {
          cursor_.Next();
          item.column = cursor_.Next().text;
        }
      }
      items.push_back(std::move(item));
    } while (cursor_.ConsumeSymbol(","));

    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(rel);

    ExprPtr where;
    if (cursor_.ConsumeKeyword("WHERE")) {
      MUSKETEER_ASSIGN_OR_RETURN(where, ParseExpression(&cursor_));
    }

    std::vector<std::string> group_cols;
    bool has_group_by = false;
    if (cursor_.ConsumeKeyword("GROUP")) {
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("BY"));
      has_group_by = true;
      do {
        MUSKETEER_ASSIGN_OR_RETURN(std::string col,
                                   cursor_.ExpectIdentifier("group column"));
        group_cols.push_back(std::move(col));
        // HiveQL in the paper separates group columns with AND; accept ','
        // as well.
      } while (cursor_.ConsumeKeyword("AND") || cursor_.ConsumeSymbol(","));
    }

    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string name,
                               cursor_.ExpectIdentifier("result name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));

    bool has_agg = false;
    for (const SelectItem& item : items) {
      has_agg = has_agg || item.is_agg;
    }

    if (where != nullptr) {
      int filtered = dag_->AddNode(OpKind::kSelect, name + "__filtered", {in},
                                   SelectParams{where});
      in = filtered;
    }

    int result;
    if (has_agg || has_group_by) {
      std::vector<NamedAgg> aggs;
      for (const SelectItem& item : items) {
        if (item.is_agg) {
          aggs.push_back(NamedAgg{item.fn, item.column, item.alias});
        }
      }
      if (group_cols.empty()) {
        // Non-aggregate items without GROUP BY are invalid SQL.
        for (const SelectItem& item : items) {
          if (!item.is_agg) {
            return cursor_.ErrorHere("column '" + item.column +
                                     "' must appear in GROUP BY");
          }
        }
        result = dag_->AddNode(OpKind::kAgg, name, {in}, AggParams{std::move(aggs)});
      } else {
        result = dag_->AddNode(OpKind::kGroupBy, name, {in},
                               GroupByParams{group_cols, std::move(aggs)});
      }
    } else {
      std::vector<std::string> cols;
      for (const SelectItem& item : items) {
        cols.push_back(item.column);
      }
      result = dag_->AddNode(OpKind::kProject, name, {in},
                             ProjectParams{std::move(cols)});
    }
    return Define(name, result);
  }

  // relA JOIN relB ON relA.k = relB.k AS name;
  Status ParseJoin() {
    MUSKETEER_ASSIGN_OR_RETURN(std::string left,
                               cursor_.ExpectIdentifier("left relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("JOIN"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string right,
                               cursor_.ExpectIdentifier("right relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("ON"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string q1, cursor_.ExpectIdentifier("relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("."));
    MUSKETEER_ASSIGN_OR_RETURN(std::string k1, cursor_.ExpectIdentifier("column"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
    MUSKETEER_ASSIGN_OR_RETURN(std::string q2, cursor_.ExpectIdentifier("relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("."));
    MUSKETEER_ASSIGN_OR_RETURN(std::string k2, cursor_.ExpectIdentifier("column"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string name,
                               cursor_.ExpectIdentifier("result name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));

    std::string left_key;
    std::string right_key;
    if (q1 == left && q2 == right) {
      left_key = k1;
      right_key = k2;
    } else if (q1 == right && q2 == left) {
      left_key = k2;
      right_key = k1;
    } else {
      return cursor_.ErrorHere("ON qualifiers must reference '" + left + "' and '" +
                               right + "'");
    }
    int li = ResolveRelation(left);
    int ri = ResolveRelation(right);
    int id = dag_->AddNode(OpKind::kJoin, name, {li, ri},
                           JoinParams{std::move(left_key), std::move(right_key)});
    return Define(name, id);
  }

  TokenCursor& cursor_;
  Dag* dag_;
  std::unordered_map<std::string, int> defined_;
};

}  // namespace

StatusOr<std::unique_ptr<Dag>> HiveFrontend::Parse(const std::string& source) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  auto dag = std::make_unique<Dag>();
  HiveParser parser(&cursor, dag.get());
  MUSKETEER_RETURN_IF_ERROR(parser.ParseAll());
  MUSKETEER_RETURN_IF_ERROR(dag->Validate());
  return dag;
}

}  // namespace musketeer
