// Gather-Apply-Scatter DSL front-end (§4.1.2, Listing 2).
//
// Users express vertex-centric graph computations by defining the three GAS
// steps over a vertex state column, plus an iteration bound:
//
//   GATHER = {
//     SUM (vertex_value)                     -- gather aggregation
//   }
//   APPLY = {
//     MUL [vertex_value, 0.85]               -- chained state updates,
//     SUM [vertex_value, 0.15]               --   applied in order
//   }
//   SCATTER = {
//     DIV [vertex_value, vertex_degree]      -- message computed per edge
//   }
//   ITERATION_STOP = (iteration < 20)
//   ITERATION = {
//     SUM [iteration, 1]
//   }
//
// Conventions: the vertex relation is named `vertices` with columns
// (id, vertex_value, vertex_degree); the edge relation is `edges` with
// columns (src, dst). Optional overrides:
//
//   VERTICES = my_vertex_relation
//   EDGES = my_edge_relation
//   RESULT = my_output_name           -- default "gas_result"
//
// The parser lowers GAS to the data-flow pattern used by GraphX in reverse
// (§4.3.1): a WHILE loop whose body JOINs edges with the vertex state on the
// source id, MAPs the scatter expression along each edge, GROUP BYs on the
// destination id with the gather aggregation, JOINs the result back to the
// vertex state, and MAPs the apply chain to produce the next state. This is
// exactly the shape Musketeer's idiom recognizer detects.

#ifndef MUSKETEER_SRC_FRONTENDS_GAS_PARSER_H_
#define MUSKETEER_SRC_FRONTENDS_GAS_PARSER_H_

#include "src/frontends/frontend.h"

namespace musketeer {

class GasFrontend : public Frontend {
 public:
  FrontendLanguage language() const override { return FrontendLanguage::kGas; }
  StatusOr<std::unique_ptr<Dag>> Parse(const std::string& source) const override;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_GAS_PARSER_H_
