#include "src/frontends/frontend.h"

#include "src/frontends/beer_parser.h"
#include "src/frontends/gas_parser.h"
#include "src/frontends/hive_parser.h"
#include "src/frontends/lindi_parser.h"

namespace musketeer {

const char* FrontendLanguageName(FrontendLanguage lang) {
  switch (lang) {
    case FrontendLanguage::kBeer:
      return "BEER";
    case FrontendLanguage::kHive:
      return "HiveQL";
    case FrontendLanguage::kGas:
      return "GAS";
    case FrontendLanguage::kLindi:
      return "Lindi";
  }
  return "UNKNOWN";
}

std::unique_ptr<Frontend> MakeFrontend(FrontendLanguage lang) {
  switch (lang) {
    case FrontendLanguage::kBeer:
      return std::make_unique<BeerFrontend>();
    case FrontendLanguage::kHive:
      return std::make_unique<HiveFrontend>();
    case FrontendLanguage::kGas:
      return std::make_unique<GasFrontend>();
    case FrontendLanguage::kLindi:
      return std::make_unique<LindiFrontend>();
  }
  return nullptr;
}

StatusOr<std::unique_ptr<Dag>> ParseWorkflow(FrontendLanguage lang,
                                             const std::string& source) {
  std::unique_ptr<Frontend> frontend = MakeFrontend(lang);
  if (frontend == nullptr) {
    return InvalidArgumentError("unknown front-end language");
  }
  return frontend->Parse(source);
}

}  // namespace musketeer
