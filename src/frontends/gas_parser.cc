#include "src/frontends/gas_parser.h"

#include "src/base/strings.h"
#include "src/frontends/expr_parser.h"
#include "src/frontends/lexer.h"

namespace musketeer {

namespace {

// Column-name conventions of the GAS front-end.
constexpr char kIdCol[] = "id";
constexpr char kValueCol[] = "vertex_value";
constexpr char kDegreeCol[] = "vertex_degree";
constexpr char kSrcCol[] = "src";
constexpr char kDstCol[] = "dst";
constexpr char kMsgCol[] = "msg";
constexpr char kAccCol[] = "acc";

struct GasSpec {
  AggFn gather = AggFn::kSum;
  // Apply chain expressed over the gathered accumulator (column `acc`).
  ExprPtr apply;
  // Scatter expression over the joined (edge, vertex-state) row.
  ExprPtr scatter;
  int64_t iterations = 1;
  std::string vertices = "vertices";
  std::string edges = "edges";
  std::string result = "gas_result";
};

std::optional<BinOp> ArithFromKeyword(const Token& t) {
  if (t.IsKeyword("SUM")) {
    return BinOp::kAdd;
  }
  if (t.IsKeyword("SUB")) {
    return BinOp::kSub;
  }
  if (t.IsKeyword("MUL")) {
    return BinOp::kMul;
  }
  if (t.IsKeyword("DIV")) {
    return BinOp::kDiv;
  }
  return std::nullopt;
}

class GasParser {
 public:
  explicit GasParser(TokenCursor* cursor) : cursor_(*cursor) {}

  StatusOr<GasSpec> ParseSpec() {
    GasSpec spec;
    bool saw_gather = false;
    bool saw_apply = false;
    bool saw_scatter = false;
    bool saw_stop = false;
    while (!cursor_.AtEnd()) {
      if (cursor_.ConsumeKeyword("GATHER")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_RETURN_IF_ERROR(ParseGather(&spec));
        saw_gather = true;
      } else if (cursor_.ConsumeKeyword("APPLY")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_ASSIGN_OR_RETURN(spec.apply, ParseChain(Expr::Column(kAccCol)));
        saw_apply = true;
      } else if (cursor_.ConsumeKeyword("SCATTER")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_ASSIGN_OR_RETURN(spec.scatter, ParseChain(Expr::Column(kValueCol)));
        saw_scatter = true;
      } else if (cursor_.ConsumeKeyword("ITERATION_STOP")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_RETURN_IF_ERROR(ParseIterationStop(&spec));
        saw_stop = true;
      } else if (cursor_.ConsumeKeyword("ITERATION")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_RETURN_IF_ERROR(ParseIterationUpdate());
      } else if (cursor_.ConsumeKeyword("VERTICES")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_ASSIGN_OR_RETURN(spec.vertices,
                                   cursor_.ExpectIdentifier("relation name"));
      } else if (cursor_.ConsumeKeyword("EDGES")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_ASSIGN_OR_RETURN(spec.edges,
                                   cursor_.ExpectIdentifier("relation name"));
      } else if (cursor_.ConsumeKeyword("RESULT")) {
        MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
        MUSKETEER_ASSIGN_OR_RETURN(spec.result,
                                   cursor_.ExpectIdentifier("relation name"));
      } else {
        return cursor_.ErrorHere("expected a GAS section keyword");
      }
    }
    if (!saw_gather || !saw_apply || !saw_scatter || !saw_stop) {
      return InvalidArgumentError(
          "GAS workflow must define GATHER, APPLY, SCATTER and ITERATION_STOP");
    }
    return spec;
  }

 private:
  // GATHER = { FN (vertex_value) }
  Status ParseGather(GasSpec* spec) {
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("{"));
    const Token& t = cursor_.Peek();
    if (t.IsKeyword("SUM")) {
      spec->gather = AggFn::kSum;
    } else if (t.IsKeyword("MIN")) {
      spec->gather = AggFn::kMin;
    } else if (t.IsKeyword("MAX")) {
      spec->gather = AggFn::kMax;
    } else if (t.IsKeyword("COUNT")) {
      spec->gather = AggFn::kCount;
    } else if (t.IsKeyword("AVG")) {
      spec->gather = AggFn::kAvg;
    } else {
      return cursor_.ErrorHere("expected gather aggregation (SUM/MIN/MAX/COUNT/AVG)");
    }
    cursor_.Next();
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectIdentifier("gathered column").status());
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    return cursor_.ExpectSymbol("}");
  }

  // { OP [vertex_value, operand] ... } — sequential updates to the running
  // value, which starts as `seed`.
  StatusOr<ExprPtr> ParseChain(ExprPtr seed) {
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("{"));
    ExprPtr cur = std::move(seed);
    while (!cursor_.Peek().IsSymbol("}")) {
      auto op = ArithFromKeyword(cursor_.Peek());
      if (!op.has_value()) {
        return cursor_.ErrorHere("expected SUM/SUB/MUL/DIV step");
      }
      cursor_.Next();
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("["));
      // First argument names the running value; accept and ignore its name.
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectIdentifier("running value").status());
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
      ExprPtr operand;
      const Token& arg = cursor_.Peek();
      if (arg.kind == TokenKind::kInteger) {
        operand = Expr::Literal(cursor_.Next().int_value);
      } else if (arg.kind == TokenKind::kDouble) {
        operand = Expr::Literal(cursor_.Next().double_value);
      } else if (arg.kind == TokenKind::kIdentifier) {
        operand = Expr::Column(cursor_.Next().text);
      } else {
        return cursor_.ErrorHere("expected literal or column operand");
      }
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("]"));
      cursor_.ConsumeSymbol(",");  // optional separators between steps
      cur = Expr::Binary(*op, std::move(cur), std::move(operand));
    }
    cursor_.Next();  // }
    return cur;
  }

  // ITERATION_STOP = (iteration < N)
  Status ParseIterationStop(GasSpec* spec) {
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectIdentifier("iteration counter").status());
    if (!cursor_.ConsumeSymbol("<") && !cursor_.ConsumeSymbol("<=")) {
      return cursor_.ErrorHere("expected '<' or '<=' in ITERATION_STOP");
    }
    if (cursor_.Peek().kind != TokenKind::kInteger) {
      return cursor_.ErrorHere("expected iteration bound");
    }
    spec->iterations = cursor_.Next().int_value;
    if (spec->iterations < 1) {
      return cursor_.ErrorHere("iteration bound must be >= 1");
    }
    return cursor_.ExpectSymbol(")");
  }

  // ITERATION = { SUM [iteration, 1] } — the counter update; only unit
  // increments are supported, so the block is validated and discarded.
  Status ParseIterationUpdate() {
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("{"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("SUM"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("["));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectIdentifier("iteration counter").status());
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
    if (cursor_.Peek().kind != TokenKind::kInteger || cursor_.Peek().int_value != 1) {
      return cursor_.ErrorHere("only unit iteration increments are supported");
    }
    cursor_.Next();
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("]"));
    // Tolerate a trailing ')' as in the paper's listing.
    cursor_.ConsumeSymbol(")");
    return cursor_.ExpectSymbol("}");
  }

  TokenCursor& cursor_;
};

// Builds the reverse-GraphX data-flow lowering described in the header.
std::unique_ptr<Dag> LowerGas(const GasSpec& spec) {
  auto body = std::make_unique<Dag>();
  int v_in = body->AddInput(spec.vertices);
  int e_in = body->AddInput(spec.edges);

  // JOIN edges with vertex state on the source id ("scatter" direction).
  int joined = body->AddNode(OpKind::kJoin, "__gas_scatter_join", {e_in, v_in},
                             JoinParams{kSrcCol, kIdCol});

  // Per-edge message to the destination.
  std::vector<NamedExpr> msg_outputs;
  msg_outputs.push_back(NamedExpr{kIdCol, Expr::Column(kDstCol)});
  msg_outputs.push_back(NamedExpr{kMsgCol, spec.scatter});
  int msgs = body->AddNode(OpKind::kMap, "__gas_messages", {joined},
                           MapParams{std::move(msg_outputs)});

  // For extremum gathers (SSSP's MIN), each vertex also "sends itself" its
  // current state so vertices without incoming messages keep their value.
  if (spec.gather == AggFn::kMin || spec.gather == AggFn::kMax) {
    std::vector<NamedExpr> self_outputs;
    self_outputs.push_back(NamedExpr{kIdCol, Expr::Column(kIdCol)});
    self_outputs.push_back(NamedExpr{kMsgCol, Expr::Column(kValueCol)});
    int self_msgs = body->AddNode(OpKind::kMap, "__gas_self_messages", {v_in},
                                  MapParams{std::move(self_outputs)});
    msgs = body->AddNode(OpKind::kUnion, "__gas_all_messages", {msgs, self_msgs},
                         UnionParams{});
  }

  // "Gather": aggregate incoming messages per destination vertex.
  std::vector<NamedAgg> gather_aggs;
  gather_aggs.push_back(NamedAgg{spec.gather, kMsgCol, kAccCol});
  int gathered =
      body->AddNode(OpKind::kGroupBy, "__gas_gathered", {msgs},
                    GroupByParams{{kIdCol}, std::move(gather_aggs)});

  // Join the accumulator back onto the vertex state.
  int rejoin = body->AddNode(OpKind::kJoin, "__gas_apply_join", {v_in, gathered},
                             JoinParams{kIdCol, kIdCol});

  // "Apply": new state from the accumulator; degree is carried through.
  std::vector<NamedExpr> apply_outputs;
  apply_outputs.push_back(NamedExpr{kIdCol, Expr::Column(kIdCol)});
  apply_outputs.push_back(NamedExpr{kValueCol, spec.apply});
  apply_outputs.push_back(NamedExpr{kDegreeCol, Expr::Column(kDegreeCol)});
  body->AddNode(OpKind::kMap, "__gas_next_vertices", {rejoin},
                MapParams{std::move(apply_outputs)});

  auto dag = std::make_unique<Dag>();
  int v0 = dag->AddInput(spec.vertices);
  int e0 = dag->AddInput(spec.edges);

  WhileParams params;
  params.iterations = spec.iterations;
  params.body = std::shared_ptr<const Dag>(body.release());
  params.bindings.push_back(LoopBinding{spec.vertices, "__gas_next_vertices"});
  params.result = "__gas_next_vertices";
  dag->AddNode(OpKind::kWhile, spec.result, {v0, e0}, std::move(params));
  return dag;
}

}  // namespace

StatusOr<std::unique_ptr<Dag>> GasFrontend::Parse(const std::string& source) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  GasParser parser(&cursor);
  MUSKETEER_ASSIGN_OR_RETURN(GasSpec spec, parser.ParseSpec());
  std::unique_ptr<Dag> dag = LowerGas(spec);
  MUSKETEER_RETURN_IF_ERROR(dag->Validate());
  return dag;
}

}  // namespace musketeer
