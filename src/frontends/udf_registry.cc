#include "src/frontends/udf_registry.h"

#include <unordered_map>

namespace musketeer {

namespace {

std::unordered_map<std::string, UdfDefinition>& Registry() {
  static auto* registry = new std::unordered_map<std::string, UdfDefinition>();
  return *registry;
}

}  // namespace

void RegisterUdf(UdfDefinition def) {
  Registry()[def.name] = std::move(def);
}

StatusOr<UdfDefinition> LookupUdf(const std::string& name) {
  auto it = Registry().find(name);
  if (it == Registry().end()) {
    return NotFoundError("no UDF registered under '" + name + "'");
  }
  return it->second;
}

void ClearUdfRegistry() { Registry().clear(); }

}  // namespace musketeer
