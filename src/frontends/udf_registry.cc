#include "src/frontends/udf_registry.h"

#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace musketeer {

namespace {

// Guarded by RegistryMutex(): concurrent workflow submissions (the service's
// worker pool) parse — and therefore look UDFs up — in parallel.
std::shared_mutex& RegistryMutex() {
  static auto* mu = new std::shared_mutex();
  return *mu;
}

std::unordered_map<std::string, UdfDefinition>& Registry() {
  static auto* registry = new std::unordered_map<std::string, UdfDefinition>();
  return *registry;
}

}  // namespace

void RegisterUdf(UdfDefinition def) {
  std::unique_lock lock(RegistryMutex());
  Registry()[def.name] = std::move(def);
}

StatusOr<UdfDefinition> LookupUdf(const std::string& name) {
  std::shared_lock lock(RegistryMutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) {
    return NotFoundError("no UDF registered under '" + name + "'");
  }
  return it->second;
}

void ClearUdfRegistry() {
  std::unique_lock lock(RegistryMutex());
  Registry().clear();
}

}  // namespace musketeer
