// Shared scalar-expression parser (WHERE clauses, GAS apply chains, Lindi
// lambda bodies). Standard precedence climbing:
//   OR < AND < comparisons < additive < multiplicative < primary.
// Qualified column references ("rel.col") resolve to the bare column name;
// the relational layer keeps column names unique within a schema.

#ifndef MUSKETEER_SRC_FRONTENDS_EXPR_PARSER_H_
#define MUSKETEER_SRC_FRONTENDS_EXPR_PARSER_H_

#include "src/frontends/lexer.h"
#include "src/ir/expr.h"

namespace musketeer {

StatusOr<ExprPtr> ParseExpression(TokenCursor* cursor);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_EXPR_PARSER_H_
