// User-defined function registry (§4.1.3).
//
// Front-end abstractions with no corresponding IR operator map to UDFs: a
// named table function registered ahead of parsing, callable from BEER as
//
//   out = UDF my_function(rel_a, rel_b);
//
// Every engine executes a UDF through the same registered implementation
// (the paper's engines would run user-provided Java/C++ through foreign-
// function interfaces; §8 discusses the optimization cost of that).
// Registration is process-global and thread-safe: lookups happen from the
// workflow service's concurrent parser threads, so the registry is guarded
// by a shared_mutex (register at startup, look up from anywhere).

#ifndef MUSKETEER_SRC_FRONTENDS_UDF_REGISTRY_H_
#define MUSKETEER_SRC_FRONTENDS_UDF_REGISTRY_H_

#include <string>

#include "src/ir/operator.h"

namespace musketeer {

struct UdfDefinition {
  std::string name;
  int arity = 1;         // number of input relations
  Schema output_schema;  // declared result schema
  UdfFn fn;
};

// Registers (or replaces) a UDF definition.
void RegisterUdf(UdfDefinition def);

// Looks up a UDF by name (case-sensitive).
StatusOr<UdfDefinition> LookupUdf(const std::string& name);

// Removes every registered UDF (tests).
void ClearUdfRegistry();

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_UDF_REGISTRY_H_
