// Common front-end interface: a front-end turns workflow source text in one
// of the supported languages into the shared IR DAG (§4.1).

#ifndef MUSKETEER_SRC_FRONTENDS_FRONTEND_H_
#define MUSKETEER_SRC_FRONTENDS_FRONTEND_H_

#include <memory>
#include <string>

#include "src/ir/dag.h"

namespace musketeer {

enum class FrontendLanguage {
  kBeer,   // Musketeer's own SQL-like DSL with iteration (§4.1.1)
  kHive,   // HiveQL subset (Listing 1)
  kGas,    // Gather-Apply-Scatter DSL (Listing 2)
  kLindi,  // LINQ-style chained-operator language
};

const char* FrontendLanguageName(FrontendLanguage lang);

class Frontend {
 public:
  virtual ~Frontend() = default;
  virtual FrontendLanguage language() const = 0;
  virtual StatusOr<std::unique_ptr<Dag>> Parse(const std::string& source) const = 0;
};

// Factory covering all built-in languages.
std::unique_ptr<Frontend> MakeFrontend(FrontendLanguage lang);

// One-shot convenience.
StatusOr<std::unique_ptr<Dag>> ParseWorkflow(FrontendLanguage lang,
                                             const std::string& source);

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_FRONTEND_H_
