#include "src/frontends/beer_parser.h"

#include <unordered_map>
#include <unordered_set>

#include "src/base/strings.h"
#include "src/frontends/expr_parser.h"
#include "src/frontends/lexer.h"
#include "src/frontends/udf_registry.h"

namespace musketeer {

namespace {

// Parser state for one DAG scope (the top level, or one WHILE body).
struct Scope {
  Dag* dag;
  // Relation name -> producing node id within this scope.
  std::unordered_map<std::string, int> defined;
  // Relations referenced but not defined here (candidate outer/base inputs),
  // in first-reference order.
  std::vector<std::string> external_refs;
};

class BeerParser {
 public:
  explicit BeerParser(TokenCursor* cursor) : cursor_(*cursor) {}

  Status ParseStatements(Scope* scope, bool stop_at_brace) {
    while (!cursor_.AtEnd()) {
      if (stop_at_brace && cursor_.Peek().IsSymbol("}")) {
        return OkStatus();
      }
      if (cursor_.Peek().IsKeyword("WHILE")) {
        MUSKETEER_RETURN_IF_ERROR(ParseWhile(scope));
        continue;
      }
      MUSKETEER_RETURN_IF_ERROR(ParseAssignment(scope));
    }
    if (stop_at_brace) {
      return cursor_.ErrorHere("expected '}' closing WHILE body");
    }
    return OkStatus();
  }

 private:
  // Resolves a relation reference: existing definition in scope, or a new
  // INPUT node (recorded as an external reference).
  int ResolveRelation(Scope* scope, const std::string& name) {
    auto it = scope->defined.find(name);
    if (it != scope->defined.end()) {
      return it->second;
    }
    int id = scope->dag->AddInput(name);
    scope->defined[name] = id;
    scope->external_refs.push_back(name);
    return id;
  }

  Status DefineRelation(Scope* scope, const std::string& name, int node_id) {
    if (scope->defined.count(name) > 0) {
      return cursor_.ErrorHere("relation '" + name + "' already defined");
    }
    scope->defined[name] = node_id;
    return OkStatus();
  }

  StatusOr<std::vector<std::string>> ParseColumnList() {
    std::vector<std::string> cols;
    do {
      MUSKETEER_ASSIGN_OR_RETURN(std::string col,
                                 cursor_.ExpectIdentifier("column name"));
      cols.push_back(std::move(col));
    } while (cursor_.ConsumeSymbol(","));
    return cols;
  }

  StatusOr<AggFn> ParseAggFn(const std::string& name) {
    if (EqualsIgnoreCase(name, "SUM")) {
      return AggFn::kSum;
    }
    if (EqualsIgnoreCase(name, "COUNT")) {
      return AggFn::kCount;
    }
    if (EqualsIgnoreCase(name, "MIN")) {
      return AggFn::kMin;
    }
    if (EqualsIgnoreCase(name, "MAX")) {
      return AggFn::kMax;
    }
    if (EqualsIgnoreCase(name, "AVG")) {
      return AggFn::kAvg;
    }
    return cursor_.ErrorHere("unknown aggregation function '" + name + "'");
  }

  // name = <op-expr> ;
  Status ParseAssignment(Scope* scope) {
    MUSKETEER_ASSIGN_OR_RETURN(std::string name,
                               cursor_.ExpectIdentifier("relation name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
    MUSKETEER_ASSIGN_OR_RETURN(int node, ParseOpExpr(scope, name));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));
    return DefineRelation(scope, name, node);
  }

  StatusOr<int> ParseOpExpr(Scope* scope, const std::string& name) {
    const Token& t = cursor_.Peek();
    if (t.IsKeyword("SELECT")) {
      return ParseSelect(scope, name);
    }
    if (t.IsKeyword("JOIN")) {
      return ParseJoin(scope, name);
    }
    if (t.IsKeyword("CROSSJOIN")) {
      return ParseBinarySet(scope, name, OpKind::kCrossJoin);
    }
    if (t.IsKeyword("UNION")) {
      return ParseBinarySet(scope, name, OpKind::kUnion);
    }
    if (t.IsKeyword("INTERSECT")) {
      return ParseBinarySet(scope, name, OpKind::kIntersect);
    }
    if (t.IsKeyword("DIFFERENCE")) {
      return ParseBinarySet(scope, name, OpKind::kDifference);
    }
    if (t.IsKeyword("DISTINCT")) {
      cursor_.Next();
      MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                                 cursor_.ExpectIdentifier("relation name"));
      int in = ResolveRelation(scope, rel);
      return scope->dag->AddNode(OpKind::kDistinct, name, {in}, DistinctParams{});
    }
    if (t.IsKeyword("AGG")) {
      return ParseAgg(scope, name);
    }
    if (t.IsKeyword("MAP")) {
      return ParseMap(scope, name);
    }
    if (t.IsKeyword("MAX") || t.IsKeyword("MIN")) {
      return ParseExtreme(scope, name);
    }
    if (t.IsKeyword("TOPN")) {
      return ParseTopN(scope, name);
    }
    if (t.IsKeyword("SORT")) {
      return ParseSort(scope, name);
    }
    if (t.IsKeyword("UDF")) {
      return ParseUdf(scope, name);
    }
    return cursor_.ErrorHere("expected an operator keyword");
  }

  StatusOr<int> ParseSelect(Scope* scope, const std::string& name) {
    cursor_.Next();  // SELECT
    bool star = cursor_.ConsumeSymbol("*");
    std::vector<std::string> cols;
    if (!star) {
      MUSKETEER_ASSIGN_OR_RETURN(cols, ParseColumnList());
    }
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(scope, rel);
    ExprPtr condition;
    if (cursor_.ConsumeKeyword("WHERE")) {
      MUSKETEER_ASSIGN_OR_RETURN(condition, ParseExpression(&cursor_));
    }
    if (condition != nullptr && !star) {
      int filtered = scope->dag->AddNode(OpKind::kSelect, name + "__filtered", {in},
                                         SelectParams{condition});
      return scope->dag->AddNode(OpKind::kProject, name, {filtered},
                                 ProjectParams{std::move(cols)});
    }
    if (condition != nullptr) {
      return scope->dag->AddNode(OpKind::kSelect, name, {in},
                                 SelectParams{condition});
    }
    if (star) {
      return cursor_.ErrorHere("SELECT * without WHERE is a no-op");
    }
    return scope->dag->AddNode(OpKind::kProject, name, {in},
                               ProjectParams{std::move(cols)});
  }

  StatusOr<int> ParseJoin(Scope* scope, const std::string& name) {
    cursor_.Next();  // JOIN
    MUSKETEER_ASSIGN_OR_RETURN(std::string left,
                               cursor_.ExpectIdentifier("left relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
    MUSKETEER_ASSIGN_OR_RETURN(std::string right,
                               cursor_.ExpectIdentifier("right relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("ON"));
    // relA.key = relB.key (qualifiers may appear in either order).
    MUSKETEER_ASSIGN_OR_RETURN(std::string q1, cursor_.ExpectIdentifier("relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("."));
    MUSKETEER_ASSIGN_OR_RETURN(std::string k1, cursor_.ExpectIdentifier("column"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
    MUSKETEER_ASSIGN_OR_RETURN(std::string q2, cursor_.ExpectIdentifier("relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("."));
    MUSKETEER_ASSIGN_OR_RETURN(std::string k2, cursor_.ExpectIdentifier("column"));

    std::string left_key;
    std::string right_key;
    if (q1 == left && q2 == right) {
      left_key = k1;
      right_key = k2;
    } else if (q1 == right && q2 == left) {
      left_key = k2;
      right_key = k1;
    } else {
      return cursor_.ErrorHere("JOIN ON qualifiers must name the joined relations '" +
                               left + "' and '" + right + "'");
    }
    int li = ResolveRelation(scope, left);
    int ri = ResolveRelation(scope, right);
    return scope->dag->AddNode(OpKind::kJoin, name, {li, ri},
                               JoinParams{left_key, right_key});
  }

  StatusOr<int> ParseBinarySet(Scope* scope, const std::string& name, OpKind kind) {
    cursor_.Next();  // keyword
    MUSKETEER_ASSIGN_OR_RETURN(std::string left,
                               cursor_.ExpectIdentifier("left relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
    MUSKETEER_ASSIGN_OR_RETURN(std::string right,
                               cursor_.ExpectIdentifier("right relation"));
    int li = ResolveRelation(scope, left);
    int ri = ResolveRelation(scope, right);
    OpParams params;
    switch (kind) {
      case OpKind::kCrossJoin:
        params = CrossJoinParams{};
        break;
      case OpKind::kUnion:
        params = UnionParams{};
        break;
      case OpKind::kIntersect:
        params = IntersectParams{};
        break;
      default:
        params = DifferenceParams{};
        break;
    }
    return scope->dag->AddNode(kind, name, {li, ri}, std::move(params));
  }

  StatusOr<int> ParseAgg(Scope* scope, const std::string& name) {
    cursor_.Next();  // AGG
    std::vector<NamedAgg> aggs;
    do {
      MUSKETEER_ASSIGN_OR_RETURN(std::string fn_name,
                                 cursor_.ExpectIdentifier("aggregation function"));
      MUSKETEER_ASSIGN_OR_RETURN(AggFn fn, ParseAggFn(fn_name));
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
      std::string col;
      if (!cursor_.ConsumeSymbol("*")) {
        MUSKETEER_ASSIGN_OR_RETURN(col, cursor_.ExpectIdentifier("column"));
      } else if (fn != AggFn::kCount) {
        return cursor_.ErrorHere("'*' argument only valid for COUNT");
      }
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
      MUSKETEER_ASSIGN_OR_RETURN(std::string out,
                                 cursor_.ExpectIdentifier("output column"));
      aggs.push_back(NamedAgg{fn, std::move(col), std::move(out)});
    } while (cursor_.ConsumeSymbol(","));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(scope, rel);
    if (cursor_.ConsumeKeyword("GROUP")) {
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("BY"));
      MUSKETEER_ASSIGN_OR_RETURN(std::vector<std::string> group_cols,
                                 ParseColumnList());
      return scope->dag->AddNode(OpKind::kGroupBy, name, {in},
                                 GroupByParams{std::move(group_cols), std::move(aggs)});
    }
    return scope->dag->AddNode(OpKind::kAgg, name, {in}, AggParams{std::move(aggs)});
  }

  StatusOr<int> ParseMap(Scope* scope, const std::string& name) {
    cursor_.Next();  // MAP
    std::vector<NamedExpr> outputs;
    do {
      MUSKETEER_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression(&cursor_));
      std::string out;
      if (cursor_.ConsumeKeyword("AS")) {
        MUSKETEER_ASSIGN_OR_RETURN(out, cursor_.ExpectIdentifier("output column"));
      } else if (e->kind() == ExprKind::kColumn) {
        out = e->column_name();  // passthrough column keeps its name
      } else {
        return cursor_.ErrorHere("computed MAP column needs 'AS name'");
      }
      outputs.push_back(NamedExpr{std::move(out), std::move(e)});
    } while (cursor_.ConsumeSymbol(","));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(scope, rel);
    return scope->dag->AddNode(OpKind::kMap, name, {in},
                               MapParams{std::move(outputs)});
  }

  StatusOr<int> ParseExtreme(Scope* scope, const std::string& name) {
    bool take_max = cursor_.Peek().IsKeyword("MAX");
    cursor_.Next();
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    MUSKETEER_ASSIGN_OR_RETURN(std::string col, cursor_.ExpectIdentifier("column"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(scope, rel);
    return scope->dag->AddNode(take_max ? OpKind::kMax : OpKind::kMin, name, {in},
                               ExtremeParams{std::move(col)});
  }

  StatusOr<int> ParseTopN(Scope* scope, const std::string& name) {
    cursor_.Next();  // TOPN
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    MUSKETEER_ASSIGN_OR_RETURN(std::string col, cursor_.ExpectIdentifier("column"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(","));
    if (cursor_.Peek().kind != TokenKind::kInteger) {
      return cursor_.ErrorHere("expected integer N");
    }
    int64_t n = cursor_.Next().int_value;
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    int in = ResolveRelation(scope, rel);
    return scope->dag->AddNode(OpKind::kTopN, name, {in},
                               TopNParams{std::move(col), n});
  }

  StatusOr<int> ParseSort(Scope* scope, const std::string& name) {
    cursor_.Next();  // SORT
    MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                               cursor_.ExpectIdentifier("relation name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("BY"));
    MUSKETEER_ASSIGN_OR_RETURN(std::vector<std::string> cols, ParseColumnList());
    int in = ResolveRelation(scope, rel);
    return scope->dag->AddNode(OpKind::kSort, name, {in},
                               SortParams{std::move(cols)});
  }

  // name = UDF function(rel [, rel...]);
  StatusOr<int> ParseUdf(Scope* scope, const std::string& name) {
    cursor_.Next();  // UDF
    MUSKETEER_ASSIGN_OR_RETURN(std::string fn_name,
                               cursor_.ExpectIdentifier("UDF name"));
    auto def = LookupUdf(fn_name);
    if (!def.ok()) {
      return cursor_.ErrorHere(def.status().message());
    }
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    std::vector<int> inputs;
    if (!cursor_.Peek().IsSymbol(")")) {
      do {
        MUSKETEER_ASSIGN_OR_RETURN(std::string rel,
                                   cursor_.ExpectIdentifier("relation name"));
        inputs.push_back(ResolveRelation(scope, rel));
      } while (cursor_.ConsumeSymbol(","));
    }
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    if (static_cast<int>(inputs.size()) != def->arity) {
      return cursor_.ErrorHere("UDF '" + fn_name + "' expects " +
                               std::to_string(def->arity) + " relation(s), got " +
                               std::to_string(inputs.size()));
    }
    UdfParams params;
    params.name = def->name;
    params.output_schema = def->output_schema;
    params.fn = def->fn;
    return scope->dag->AddNode(OpKind::kUdf, name, std::move(inputs),
                               std::move(params));
  }

  // WHILE n LOOP lv = init UPDATE next [, ...] { body } YIELD rel AS name;
  Status ParseWhile(Scope* scope) {
    cursor_.Next();  // WHILE
    // WHILE FIXPOINT <max> iterates until the loop-carried relations stop
    // changing (data-dependent iteration), bounded by <max> trips.
    bool until_fixpoint = cursor_.ConsumeKeyword("FIXPOINT");
    if (cursor_.Peek().kind != TokenKind::kInteger) {
      return cursor_.ErrorHere("expected iteration count after WHILE");
    }
    int64_t iterations = cursor_.Next().int_value;
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("LOOP"));

    std::vector<LoopBinding> bindings;
    std::vector<int> inputs;
    do {
      MUSKETEER_ASSIGN_OR_RETURN(std::string lv,
                                 cursor_.ExpectIdentifier("loop variable"));
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("="));
      MUSKETEER_ASSIGN_OR_RETURN(std::string init,
                                 cursor_.ExpectIdentifier("initial relation"));
      MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("UPDATE"));
      MUSKETEER_ASSIGN_OR_RETURN(std::string next,
                                 cursor_.ExpectIdentifier("update relation"));
      inputs.push_back(ResolveRelation(scope, init));
      bindings.push_back(LoopBinding{std::move(lv), std::move(next)});
    } while (cursor_.ConsumeSymbol(","));

    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("{"));
    auto body = std::make_unique<Dag>();
    Scope body_scope;
    body_scope.dag = body.get();
    // Loop variables resolve to body INPUT nodes.
    for (const LoopBinding& b : bindings) {
      int id = body->AddInput(b.loop_input);
      body_scope.defined[b.loop_input] = id;
    }
    MUSKETEER_RETURN_IF_ERROR(ParseStatements(&body_scope, /*stop_at_brace=*/true));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol("}"));

    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("YIELD"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string result,
                               cursor_.ExpectIdentifier("result relation"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
    MUSKETEER_ASSIGN_OR_RETURN(std::string name,
                               cursor_.ExpectIdentifier("output name"));
    MUSKETEER_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));

    if (body_scope.defined.count(result) == 0) {
      return cursor_.ErrorHere("YIELD relation '" + result +
                               "' not defined in WHILE body");
    }

    // Every body reference to an outer relation becomes an explicit
    // loop-invariant input of the WHILE node (creating a base-relation INPUT
    // in the outer scope if needed), so the job extractor sees the loop's
    // full data dependencies.
    for (const std::string& ref : body_scope.external_refs) {
      inputs.push_back(ResolveRelation(scope, ref));
    }

    WhileParams params;
    params.iterations = iterations;
    params.until_fixpoint = until_fixpoint;
    params.body = std::shared_ptr<const Dag>(body.release());
    params.bindings = std::move(bindings);
    params.result = std::move(result);
    int id = scope->dag->AddNode(OpKind::kWhile, name, std::move(inputs),
                                 std::move(params));
    return DefineRelation(scope, name, id);
  }

  TokenCursor& cursor_;
};

}  // namespace

StatusOr<std::unique_ptr<Dag>> BeerFrontend::Parse(const std::string& source) const {
  MUSKETEER_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  TokenCursor cursor(std::move(tokens));
  auto dag = std::make_unique<Dag>();
  Scope scope;
  scope.dag = dag.get();
  BeerParser parser(&cursor);
  MUSKETEER_RETURN_IF_ERROR(parser.ParseStatements(&scope, /*stop_at_brace=*/false));
  MUSKETEER_RETURN_IF_ERROR(dag->Validate());
  return dag;
}

}  // namespace musketeer
