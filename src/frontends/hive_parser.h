// HiveQL-subset front-end, covering the query shapes of the paper's Listing 1
// (max-property-price) and the TPC-H workflows:
//
//   SELECT item[, item...] FROM rel [WHERE expr]
//     [GROUP BY col [AND col...]] AS name;
//   relA JOIN relB ON relA.k = relB.k AS name;
//
// A select item is either a column name or an aggregation call
// `FN(col)` (SUM, COUNT, MIN, MAX, AVG), optionally aliased with
// `FN(col) alias`. Plain-column items must match the GROUP BY clause when
// aggregations are present. Every statement names its result with AS.

#ifndef MUSKETEER_SRC_FRONTENDS_HIVE_PARSER_H_
#define MUSKETEER_SRC_FRONTENDS_HIVE_PARSER_H_

#include "src/frontends/frontend.h"

namespace musketeer {

class HiveFrontend : public Frontend {
 public:
  FrontendLanguage language() const override { return FrontendLanguage::kHive; }
  StatusOr<std::unique_ptr<Dag>> Parse(const std::string& source) const override;
};

}  // namespace musketeer

#endif  // MUSKETEER_SRC_FRONTENDS_HIVE_PARSER_H_
