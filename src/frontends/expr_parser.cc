#include "src/frontends/expr_parser.h"

namespace musketeer {

namespace {

StatusOr<ExprPtr> ParseOr(TokenCursor* c);

StatusOr<ExprPtr> ParsePrimary(TokenCursor* c) {
  const Token& t = c->Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      int64_t v = t.int_value;
      c->Next();
      return Expr::Literal(v);
    }
    case TokenKind::kDouble: {
      double v = t.double_value;
      c->Next();
      return Expr::Literal(v);
    }
    case TokenKind::kString: {
      std::string v = t.text;
      c->Next();
      return Expr::Literal(std::move(v));
    }
    case TokenKind::kIdentifier: {
      std::string name = c->Next().text;
      // Qualified reference: rel.col -> col.
      if (c->Peek().IsSymbol(".") && c->Peek(1).kind == TokenKind::kIdentifier) {
        c->Next();
        name = c->Next().text;
      }
      return Expr::Column(std::move(name));
    }
    case TokenKind::kSymbol:
      if (c->ConsumeSymbol("(")) {
        MUSKETEER_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr(c));
        MUSKETEER_RETURN_IF_ERROR(c->ExpectSymbol(")"));
        return inner;
      }
      if (c->ConsumeSymbol("-")) {
        MUSKETEER_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary(c));
        return Expr::Binary(BinOp::kSub, Expr::Literal(static_cast<int64_t>(0)),
                            std::move(inner));
      }
      break;
    default:
      break;
  }
  return c->ErrorHere("expected expression");
}

StatusOr<ExprPtr> ParseMul(TokenCursor* c) {
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary(c));
  while (true) {
    BinOp op;
    if (c->Peek().IsSymbol("*")) {
      op = BinOp::kMul;
    } else if (c->Peek().IsSymbol("/")) {
      op = BinOp::kDiv;
    } else {
      return lhs;
    }
    c->Next();
    MUSKETEER_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary(c));
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

StatusOr<ExprPtr> ParseAdd(TokenCursor* c) {
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul(c));
  while (true) {
    BinOp op;
    if (c->Peek().IsSymbol("+")) {
      op = BinOp::kAdd;
    } else if (c->Peek().IsSymbol("-")) {
      op = BinOp::kSub;
    } else {
      return lhs;
    }
    c->Next();
    MUSKETEER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul(c));
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

StatusOr<ExprPtr> ParseCmp(TokenCursor* c) {
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd(c));
  BinOp op;
  const Token& t = c->Peek();
  if (t.IsSymbol("=") || t.IsSymbol("==")) {
    op = BinOp::kEq;
  } else if (t.IsSymbol("!=")) {
    op = BinOp::kNe;
  } else if (t.IsSymbol("<")) {
    op = BinOp::kLt;
  } else if (t.IsSymbol("<=")) {
    op = BinOp::kLe;
  } else if (t.IsSymbol(">")) {
    op = BinOp::kGt;
  } else if (t.IsSymbol(">=")) {
    op = BinOp::kGe;
  } else {
    return lhs;
  }
  c->Next();
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd(c));
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

StatusOr<ExprPtr> ParseAnd(TokenCursor* c) {
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp(c));
  while (c->ConsumeKeyword("AND")) {
    MUSKETEER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCmp(c));
    lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> ParseOr(TokenCursor* c) {
  MUSKETEER_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(c));
  while (c->ConsumeKeyword("OR")) {
    MUSKETEER_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(c));
    lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

}  // namespace

StatusOr<ExprPtr> ParseExpression(TokenCursor* cursor) { return ParseOr(cursor); }

}  // namespace musketeer
