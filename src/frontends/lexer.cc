#include "src/frontends/lexer.h"

#include <cctype>

#include "src/base/strings.h"

namespace musketeer {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto peek = [&](size_t ahead) -> char {
    return (i + ahead < n) ? source[i + ahead] : '\0';
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '#' or '--' to end of line.
    if (c == '#' || (c == '-' && peek(1) == '-')) {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = source.substr(start, i - start);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      if (i < n && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (source[i] == '+' || source[i] == '-')) {
          ++i;
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          ++i;
        }
      }
      std::string text = source.substr(start, i - start);
      Token t;
      t.line = line;
      t.text = text;
      if (is_double) {
        auto v = ParseDouble(text);
        if (!v.has_value()) {
          return InvalidArgumentError("line " + std::to_string(line) +
                                      ": bad number '" + text + "'");
        }
        t.kind = TokenKind::kDouble;
        t.double_value = *v;
      } else {
        auto v = ParseInt64(text);
        if (!v.has_value()) {
          return InvalidArgumentError("line " + std::to_string(line) +
                                      ": bad number '" + text + "'");
        }
        t.kind = TokenKind::kInteger;
        t.int_value = *v;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      size_t start = i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i >= n) {
        return InvalidArgumentError("line " + std::to_string(line) +
                                    ": unterminated string literal");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = source.substr(start, i - start);
      t.line = line;
      out.push_back(std::move(t));
      ++i;  // closing quote
      continue;
    }
    // Multi-character symbols first.
    static const char* kTwoChar[] = {"<=", ">=", "!=", "==", "=>", "->"};
    bool matched = false;
    for (const char* sym : kTwoChar) {
      if (c == sym[0] && peek(1) == sym[1]) {
        Token t;
        t.kind = TokenKind::kSymbol;
        t.text = sym;
        t.line = line;
        out.push_back(std::move(t));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    static const std::string kSingles = "()[]{},;.=<>+-*/";
    if (kSingles.find(c) != std::string::npos) {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      t.line = line;
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    return InvalidArgumentError("line " + std::to_string(line) +
                                ": unexpected character '" + std::string(1, c) + "'");
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

const Token& TokenCursor::Peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  if (p >= tokens_.size()) {
    return tokens_.back();  // kEnd sentinel
  }
  return tokens_[p];
}

const Token& TokenCursor::Next() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return t;
}

bool TokenCursor::ConsumeSymbol(const char* s) {
  if (Peek().IsSymbol(s)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::ConsumeKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectSymbol(const char* s) {
  if (!ConsumeSymbol(s)) {
    return ErrorHere(std::string("expected '") + s + "'");
  }
  return OkStatus();
}

Status TokenCursor::ExpectKeyword(const char* kw) {
  if (!ConsumeKeyword(kw)) {
    return ErrorHere(std::string("expected keyword '") + kw + "'");
  }
  return OkStatus();
}

StatusOr<std::string> TokenCursor::ExpectIdentifier(const char* what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere(std::string("expected ") + what);
  }
  return Next().text;
}

Status TokenCursor::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string tok;
  switch (t.kind) {
    case TokenKind::kEnd:
      tok = "<end of input>";
      break;
    default:
      tok = "'" + t.text + "'";
  }
  return InvalidArgumentError("line " + std::to_string(t.line) + ": " + message +
                              ", found " + tok);
}

}  // namespace musketeer
