// Workflow inspector: shows every stage of Musketeer's pipeline (Figure 5 of
// the paper) for a chosen built-in workflow — front-end source, the IR DAG,
// the optimized DAG (Graphviz available via --dot), the cost-based
// partitioning on a chosen cluster, and the generated per-engine job code.
//
//   ./build/examples/workflow_inspector [tpch|netflix|pagerank|kmeans|
//                                        topshopper|sssp|hybrid] [--dot]

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/musketeer.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

using namespace musketeer;

namespace {

struct Selection {
  WorkflowSpec workflow;
  void (*seed)(Dfs*);
  ClusterConfig cluster;
};

void SeedTpch(Dfs* dfs) {
  TpchDataset data = MakeTpch(100);
  dfs->Put("lineitem", data.lineitem);
  dfs->Put("part", data.part);
}
void SeedNetflix(Dfs* dfs) {
  NetflixDataset data = MakeNetflix();
  dfs->Put("ratings", data.ratings);
  dfs->Put("movies", data.movies);
}
void SeedPageRank(Dfs* dfs) {
  GraphDataset graph = TwitterGraph();
  dfs->Put("vertices", graph.vertices);
  dfs->Put("edges", graph.edges);
}
void SeedSssp(Dfs* dfs) {
  GraphDataset graph = TwitterGraphWithCosts();
  dfs->Put("vertices", graph.vertices);
  dfs->Put("edges", graph.edges);
}
void SeedKmeans(Dfs* dfs) {
  KmeansDataset data = MakeKmeans(1e8, 400, 100, 13);
  dfs->Put("points", data.points);
  dfs->Put("centers", data.centers);
}
void SeedTopShopper(Dfs* dfs) {
  dfs->Put("purchases", MakePurchases(4e8, 4000, 10, 31));
}
void SeedHybrid(Dfs* dfs) {
  CommunityPair pair = MakeOverlappingCommunities();
  dfs->Put("lj_edges", pair.a.edges);
  dfs->Put("web_edges", pair.b.edges);
}

Selection Select(const std::string& name) {
  if (name == "netflix") {
    return {{.id = "netflix", .language = FrontendLanguage::kBeer,
             .source = NetflixBeer(100)},
            &SeedNetflix, Ec2Cluster(100)};
  }
  if (name == "pagerank") {
    return {{.id = "pagerank", .language = FrontendLanguage::kGas,
             .source = PageRankGas(5)},
            &SeedPageRank, Ec2Cluster(100)};
  }
  if (name == "sssp") {
    return {{.id = "sssp", .language = FrontendLanguage::kGas,
             .source = SsspGas(5)},
            &SeedSssp, Ec2Cluster(100)};
  }
  if (name == "kmeans") {
    return {{.id = "kmeans", .language = FrontendLanguage::kBeer,
             .source = KmeansBeer(5)},
            &SeedKmeans, Ec2Cluster(100)};
  }
  if (name == "topshopper") {
    return {{.id = "top-shopper", .language = FrontendLanguage::kBeer,
             .source = TopShopperBeer(5, 5000)},
            &SeedTopShopper, LocalCluster()};
  }
  if (name == "hybrid") {
    return {{.id = "cross-community", .language = FrontendLanguage::kBeer,
             .source = CrossCommunityPageRankBeer(5)},
            &SeedHybrid, LocalCluster()};
  }
  return {{.id = "tpch-q17", .language = FrontendLanguage::kHive,
           .source = TpchQ17Hive()},
          &SeedTpch, Ec2Cluster(100)};
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "tpch";
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    dot = dot || std::strcmp(argv[i], "--dot") == 0;
  }
  Selection sel = Select(which);

  std::printf("=== %s (%s front-end) ===\n", sel.workflow.id.c_str(),
              FrontendLanguageName(sel.workflow.language));
  std::printf("--- source ---\n%s\n", sel.workflow.source.c_str());

  Dfs dfs;
  sel.seed(&dfs);
  Musketeer m(&dfs);

  auto raw = m.Lower(sel.workflow, /*optimize=*/false);
  if (!raw.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  std::printf("--- IR DAG (%d operators) ---\n%s\n",
              (*raw)->TotalOperatorCount(), (*raw)->DebugString().c_str());

  auto optimized = m.Lower(sel.workflow, /*optimize=*/true);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  if (dot) {
    std::printf("--- optimized DAG (Graphviz) ---\n%s\n",
                (*optimized)->ToDot().c_str());
  }

  RunOptions options;
  options.cluster = sel.cluster;
  auto result = m.Run(sel.workflow, options);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- partitioning on %s (%s search) ---\n",
              sel.cluster.name.c_str(),
              result->partitioning.used_exhaustive ? "exhaustive" : "DP");
  for (size_t i = 0; i < result->partitioning.jobs.size(); ++i) {
    const JobAssignment& job = result->partitioning.jobs[i];
    std::printf("  job %zu -> %-11s (%zu ops, est. %.1f s)\n", i + 1,
                EngineKindName(job.engine), job.ops.size(), job.cost);
  }
  std::printf("\n--- execution: %.1f simulated seconds ---\n", result->makespan);
  for (const JobResult& jr : result->job_results) {
    std::printf("  %s\n", jr.detail.c_str());
  }
  std::printf("\n--- generated code (first job) ---\n%s\n",
              result->plans.front().generated_code.c_str());
  return 0;
}
