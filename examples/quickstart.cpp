// Quickstart: the paper's max-property-price workflow (Listing 1), end to
// end. Seeds the DFS with a small real-estate data set, lets Musketeer pick
// back-end engines automatically, and prints the decision, the generated job
// code and the results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/musketeer.h"

using namespace musketeer;

int main() {
  // 1. Put the workflow's input relations into the (simulated) DFS.
  Dfs dfs;
  Schema props({{"id", FieldType::kInt64},
                {"street", FieldType::kString},
                {"town", FieldType::kString}});
  auto properties = std::make_shared<Table>(props);
  Schema price_schema({{"id", FieldType::kInt64}, {"price", FieldType::kDouble}});
  auto prices = std::make_shared<Table>(price_schema);
  const char* streets[] = {"High St", "Mill Rd", "King St", "Park Ave"};
  for (int64_t i = 0; i < 400; ++i) {
    properties->AddRow({i, std::string(streets[i % 4]),
                        std::string(i % 2 ? "Cambridge" : "Oxford")});
    prices->AddRow({i, 150000.0 + static_cast<double>((i * 7919) % 650000)});
  }
  // Pretend these tables are 40M rows in the cluster's DFS (the engines
  // charge simulated time for the nominal size; see DESIGN.md).
  properties->set_scale(1e5);
  prices->set_scale(1e5);
  dfs.Put("properties", properties);
  dfs.Put("prices", prices);

  // 2. The workflow, written once in the BEER front-end.
  WorkflowSpec workflow;
  workflow.id = "max-property-price";
  workflow.language = FrontendLanguage::kBeer;
  workflow.source = R"(
    locs = SELECT id, street, town FROM properties;
    id_price = JOIN locs, prices ON locs.id = prices.id;
    street_price = AGG MAX(price) AS max_price FROM id_price
                   GROUP BY street, town;
  )";

  // 3. Run it: Musketeer parses, optimizes, partitions the operator DAG,
  // picks the cheapest engines with its cost function, generates code and
  // executes on the simulated cluster.
  Musketeer musketeer(&dfs);
  RunOptions options;
  options.cluster = LocalCluster();
  auto result = musketeer.Run(workflow, options);
  if (!result.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Workflow executed in %.1f simulated seconds as %zu job(s):\n",
              result->makespan, result->plans.size());
  for (const JobPlan& plan : result->plans) {
    std::printf("  - %s (reads: %zu relations, writes: %zu)\n",
                plan.name.c_str(), plan.inputs.size(), plan.outputs.size());
  }

  std::printf("\nGenerated code for the first job:\n%s\n",
              result->plans.front().generated_code.c_str());

  auto it = result->outputs.find("street_price");
  if (it != result->outputs.end()) {
    std::printf("Results (max price per street & town):\n%s",
                it->second->DebugString(12).c_str());
  }

  // 4. The same workflow, forced onto a different engine — no rewrite needed.
  RunOptions hadoop_options = options;
  hadoop_options.engines = {EngineKind::kHadoop};
  auto hadoop_run = musketeer.Run(workflow, hadoop_options);
  if (hadoop_run.ok()) {
    std::printf(
        "\nSame workflow forced onto Hadoop: %zu MapReduce jobs, %.1f s "
        "(vs %.1f s automatic)\n",
        hadoop_run->plans.size(), hadoop_run->makespan, result->makespan);
  }
  return 0;
}
