// PageRank portability: one Gather-Apply-Scatter workflow (the paper's
// Listing 2), executed unchanged on five different back-end engines and two
// cluster sizes. Demonstrates idiom recognition — the same loop runs as
// repeated MapReduce jobs on Hadoop, a driver loop on Spark, and a native
// vertex program on PowerGraph/GraphChi/Naiad-GraphLINQ — with identical
// results everywhere.
//
//   ./build/examples/pagerank_portability

#include <cstdio>

#include "src/core/musketeer.h"
#include "src/opt/idiom.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

using namespace musketeer;

int main() {
  GraphDataset graph = OrkutGraph();
  WorkflowSpec workflow;
  workflow.id = "pagerank";
  workflow.language = FrontendLanguage::kGas;
  workflow.source = PageRankGas(5);
  std::printf("GAS source:\n%s\n", workflow.source.c_str());

  // Show what the front-end + idiom recognizer make of it.
  {
    Dfs dfs;
    dfs.Put("vertices", graph.vertices);
    dfs.Put("edges", graph.edges);
    Musketeer m(&dfs);
    auto dag = m.Lower(workflow);
    if (!dag.ok()) {
      std::fprintf(stderr, "%s\n", dag.status().ToString().c_str());
      return 1;
    }
    std::printf("Lowered IR:\n%s\n", (*dag)->DebugString().c_str());
    auto matches = DetectGraphIdioms(**dag);
    std::printf("Graph idiom detected: %s\n\n",
                !matches.empty() && matches[0].vertex_centric ? "yes" : "no");
  }

  std::printf("%-12s %14s %14s   result checksum\n", "engine", "16 nodes (s)",
              "100 nodes (s)");
  for (EngineKind engine : {EngineKind::kHadoop, EngineKind::kSpark,
                            EngineKind::kNaiad, EngineKind::kPowerGraph,
                            EngineKind::kGraphChi}) {
    double makespans[2] = {-1, -1};
    double checksum = 0;
    int idx = 0;
    for (int nodes : {16, 100}) {
      if (!IsDistributedEngine(engine) && nodes == 100) {
        ++idx;
        continue;
      }
      Dfs dfs;
      dfs.Put("vertices", graph.vertices);
      dfs.Put("edges", graph.edges);
      Musketeer m(&dfs);
      RunOptions options;
      options.cluster = Ec2Cluster(nodes);
      options.engines = {engine};
      auto result = m.Run(workflow, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", EngineKindName(engine),
                     result.status().ToString().c_str());
        return 1;
      }
      makespans[idx++] = result->makespan;
      checksum = 0;
      auto out = result->outputs.find("pagerank");
      if (out != result->outputs.end()) {
        for (const Row& r : out->second->MaterializeRows()) {
          checksum += AsDouble(r[1]);
        }
      }
    }
    auto cell = [](double v) {
      char buf[32];
      if (v < 0) {
        std::snprintf(buf, sizeof(buf), "%14s", "-");
      } else {
        std::snprintf(buf, sizeof(buf), "%14.1f", v);
      }
      return std::string(buf);
    };
    std::printf("%-12s %s %s   %.6f\n", EngineKindName(engine),
                cell(makespans[0]).c_str(), cell(makespans[1]).c_str(),
                checksum);
  }
  std::printf(
      "\nIdentical checksums confirm every engine computed the same ranks;\n"
      "the makespans show why the right engine depends on the scale.\n");
  return 0;
}
