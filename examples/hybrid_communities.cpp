// Combining back-ends inside one workflow (§6.3): cross-community PageRank
// intersects two communities' edge sets (a batch computation that suits
// general-purpose engines) and then runs PageRank on the common sub-graph
// (an iterative computation that suits specialized graph engines).
// Musketeer partitions the workflow across engine combinations; this example
// explores several and shows the jobs each combination produces.
//
//   ./build/examples/hybrid_communities

#include <cstdio>

#include "src/core/musketeer.h"
#include "src/workloads/datasets.h"
#include "src/workloads/workflows.h"

using namespace musketeer;

int main() {
  CommunityPair communities = MakeOverlappingCommunities();
  WorkflowSpec workflow;
  workflow.id = "cross-community-pagerank";
  workflow.language = FrontendLanguage::kBeer;
  workflow.source = CrossCommunityPageRankBeer(5);

  struct Combo {
    const char* label;
    std::vector<EngineKind> engines;
  };
  const Combo kCombos[] = {
      {"automatic (all engines)", {}},
      {"Hadoop only", {EngineKind::kHadoop}},
      {"Hadoop + PowerGraph", {EngineKind::kHadoop, EngineKind::kPowerGraph}},
      {"Spark + GraphChi", {EngineKind::kSpark, EngineKind::kGraphChi}},
  };

  for (const Combo& combo : kCombos) {
    Dfs dfs;
    dfs.Put("lj_edges", communities.a.edges);
    dfs.Put("web_edges", communities.b.edges);
    Musketeer m(&dfs);
    RunOptions options;
    options.cluster = LocalCluster();
    options.engines = combo.engines;
    auto result = m.Run(workflow, options);
    if (!result.ok()) {
      std::printf("%-26s -> not runnable: %s\n", combo.label,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-26s -> %6.1f s, DFS traffic %.1f GB\n", combo.label,
                result->makespan,
                (result->dfs_bytes_read + result->dfs_bytes_written) /
                    (1024.0 * 1024.0 * 1024.0));
    for (size_t i = 0; i < result->plans.size(); ++i) {
      const JobPlan& plan = result->plans[i];
      std::printf("     job %zu: %-22s %s -> %s\n", i + 1, plan.name.c_str(),
                  plan.inputs.empty() ? "(none)" : plan.inputs[0].c_str(),
                  plan.outputs.empty() ? "(none)" : plan.outputs[0].c_str());
    }
  }
  std::printf(
      "\nThe intersect/degree-derivation jobs go to a batch engine while the\n"
      "PageRank loop runs on a graph engine — no front-end changes needed.\n");
  return 0;
}
